package exec

import (
	"time"

	"repro/internal/flow"
	"repro/internal/storage"
	"repro/internal/trace"
)

// This file adapts the engine to the structured run-event layer
// (internal/trace). The scheduler completes units in wall-clock order,
// but events must carry deterministic sequence numbers, so the tracer
// does not emit at completion time: per-unit observations are buffered
// on the plannedJob and a job's events are emitted only when the
// in-order committer passes it — strict plan order, the same order
// that pins instance IDs. All emission happens on the run's coordinator
// goroutine, so the tracer itself needs no locking; a sink shared by
// concurrent runs sees their streams interleaved, each event carrying
// its run's label (Event.Run) for attribution.

// SetTracer installs a run-event sink (see internal/trace) that
// receives one event per lifecycle transition of every subsequent run;
// nil removes it. Events are emitted in deterministic plan order with
// wall-clock durations segregated into maskable fields. Applies to
// subsequently admitted runs.
func (e *Engine) SetTracer(s trace.Sink) {
	e.set(func(c *runConfig) { c.tracer = s })
}

// attemptRec is one attempt's observation, buffered for the tracer.
// errMsg is empty for the successful final attempt.
type attemptRec struct {
	errMsg   string
	timedOut bool
	cacheHit bool // the unit was satisfied from the result cache
}

// runTracer drives one run's event emission — to the installed sink
// and, when the run is durable, to its write-ahead log (the WAL is the
// trace: both receive the same events, the WAL's UnitCommitted records
// additionally carrying the unit's durable payload). All methods are
// safe on a nil receiver, so the scheduler hooks cost one comparison
// when neither a tracer nor a WAL is installed.
type runTracer struct {
	sink     trace.Sink
	wal      *storage.RunWAL
	label    string // stamped on every event (Event.Run)
	p        *plan
	seq      int
	skipPlan bool   // resumed run: PlanBuilt is already in the log
	unitBase []int  // first global unit index of each job
	passed   []bool // job already emitted (skip/flush idempotence)
}

// newRunTracer returns nil when neither a tracer nor a WAL is
// installed; otherwise it allocates the per-unit capture slots on the
// plan's jobs. A resumed run continues the recovered prefix's sequence
// numbering, so the union of prefix and fresh events is one gapless
// stream.
func (r *run) newRunTracer(p *plan) *runTracer {
	if r.cfg.tracer == nil && r.cfg.wal == nil {
		return nil
	}
	base := make([]int, len(p.jobs))
	u := 0
	for i, j := range p.jobs {
		base[i] = u
		u += len(j.combos)
		j.unitWait = make([]time.Duration, len(j.combos))
		j.unitDur = make([]time.Duration, len(j.combos))
		j.unitLog = make([][]attemptRec, len(j.combos))
	}
	t := &runTracer{sink: r.cfg.tracer, wal: r.cfg.wal, label: r.cfg.label, p: p,
		unitBase: base, passed: make([]bool, len(p.jobs))}
	if res := r.cfg.resume; res != nil && len(res.Events) > 0 {
		t.seq = res.NextSeq
		t.skipPlan = true
	}
	return t
}

func (t *runTracer) emit(ev trace.Event) {
	ev.Seq = t.seq
	ev.Run = t.label
	t.seq++
	if t.sink != nil {
		t.sink.Emit(ev)
	}
	if t.wal != nil {
		t.wal.AppendEvent(ev)
	}
}

// markResumed suppresses emission for a job restored from the WAL: its
// events are already in the recovered prefix.
func (t *runTracer) markResumed(j *plannedJob) {
	if t == nil {
		return
	}
	t.passed[j.idx] = true
}

// barrier forces everything appended to the WAL onto stable storage and
// surfaces the writer's first error. Called once per run, after
// RunFinished — the group-commit policy handles durability in between.
func (t *runTracer) barrier() error {
	if t == nil || t.wal == nil {
		return nil
	}
	return t.wal.Barrier()
}

// observe buffers a unit completion for later in-order emission.
func (t *runTracer) observe(d unitResult) {
	if t == nil {
		return
	}
	d.j.unitWait[d.ci] = d.wait
	d.j.unitDur[d.ci] = d.dur
	d.j.unitLog[d.ci] = d.alog
}

// planBuilt opens the stream (suppressed on a resumed run, whose
// PlanBuilt is part of the recovered prefix).
func (t *runTracer) planBuilt(sched Scheduler, workers int) {
	if t == nil || t.skipPlan {
		return
	}
	t.emit(trace.Event{Kind: trace.KindPlanBuilt, Job: -1, Combo: -1, Unit: -1,
		Scheduler: sched.String(), Workers: workers, Jobs: len(t.p.jobs), Units: t.p.units})
}

// passJob emits the lifecycle events of every unit of one job — called
// when the committer passes the job (committed, failed or skipped), and
// again harmlessly from the end-of-run flush.
func (t *runTracer) passJob(j *plannedJob) {
	if t == nil || t.passed[j.idx] {
		return
	}
	t.passed[j.idx] = true
	nodes := nodeInts(j.nodes)
	for ci := range j.combos {
		unit := t.unitBase[j.idx] + ci
		ev := trace.Event{Job: j.idx, Combo: ci, Unit: unit, Nodes: nodes, Type: j.repType}
		if j.skipped {
			ev.Kind = trace.KindUnitSkipped
			ev.Blame = int(t.p.jobs[j.blame].nodes[0])
			t.emit(ev)
			continue
		}
		log := j.unitLog[ci]
		if log == nil {
			continue // never dispatched: the run stopped first
		}
		dispatched := ev
		dispatched.Kind = trace.KindUnitDispatched
		dispatched.WaitMicros = j.unitWait[ci].Microseconds()
		t.emit(dispatched)
		started := ev
		started.Kind = trace.KindUnitStarted
		t.emit(started)
		if log[0].cacheHit {
			// A cache hit has exactly one synthetic attempt: emit the
			// extra UnitCacheHit on top of the normal lifecycle, so
			// DropKinds(UnitCacheHit) projects the warm run onto the
			// cold one.
			hit := ev
			hit.Kind = trace.KindUnitCacheHit
			t.emit(hit)
			continue
		}
		for i, a := range log {
			if a.errMsg == "" {
				break // successful final attempt; Committed follows separately
			}
			if a.timedOut {
				to := ev
				to.Kind = trace.KindUnitTimedOut
				to.Attempt = i + 1
				to.Err = a.errMsg
				t.emit(to)
			}
			attempt := ev
			attempt.Attempt = i + 1
			attempt.Err = a.errMsg
			if i < len(log)-1 {
				attempt.Kind = trace.KindUnitRetried
			} else {
				attempt.Kind = trace.KindUnitFailed
				attempt.DurMicros = j.unitDur[ci].Microseconds()
			}
			t.emit(attempt)
		}
	}
}

// committedJob emits one UnitCommitted per unit, after recordJob has
// verified the planner's IDs. Deliberately attempt-free, so a
// retried-then-succeeded run commits events identical to a clean run.
// On a durable run each event's WAL record carries the unit's payload
// — artifacts and derivation key — so recovery can replay the commit
// without re-running the tool. Resumed jobs are skipped: their commit
// records are already in the log.
func (t *runTracer) committedJob(j *plannedJob) {
	if t == nil || j.resumed {
		return
	}
	nodes := nodeInts(j.nodes)
	for ci := range j.combos {
		insts := make([]string, len(j.outIDs[ci]))
		for ni, id := range j.outIDs[ci] {
			insts[ni] = string(id)
		}
		ev := trace.Event{Kind: trace.KindUnitCommitted, Job: j.idx, Combo: ci,
			Unit: t.unitBase[j.idx] + ci, Nodes: nodes, Type: j.repType,
			Insts: insts, DurMicros: j.unitDur[ci].Microseconds()}
		ev.Seq = t.seq
		ev.Run = t.label
		t.seq++
		if t.sink != nil {
			t.sink.Emit(ev)
		}
		if t.wal != nil {
			c := &storage.UnitCommit{Unit: ev.Unit, Insts: insts, Outputs: j.outputs[ci]}
			if j.memoKeys != nil {
				c.MemoKey = string(j.memoKeys[ci])
			}
			t.wal.AppendCommit(ev, c)
		}
	}
}

// finish flushes jobs the committer never passed (fail-fast leftovers,
// cancellation) in plan order, then closes the stream. Skipped and
// executed-but-uncommitted units still get their lifecycle events; only
// UnitCommitted is reserved for recorded history.
func (t *runTracer) finish(stats *Stats, res *Result) {
	if t == nil {
		return
	}
	for _, j := range t.p.jobs {
		t.passJob(j)
	}
	t.emit(trace.Event{Kind: trace.KindRunFinished, Job: -1, Combo: -1, Unit: -1,
		Workers: stats.Workers, Jobs: stats.Jobs, Units: stats.Units,
		Committed: res.TasksRun, Failed: stats.UnitsFailed, Skipped: stats.JobsSkipped,
		BusyMicros: stats.Busy.Microseconds(), ElapsedMicros: stats.Elapsed.Microseconds()})
}

func nodeInts(ids []flow.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
