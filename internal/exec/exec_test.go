package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/schema"
)

// rig is the test bench: an engine over the full schema with standard
// tools installed and primitive data imported.
type rig struct {
	s      *schema.Schema
	db     *history.DB
	store  *datastore.Store
	engine *Engine
	ids    map[string]history.ID
}

// newRig installs one instance of each standard tool plus stimuli and
// placement options.
func newRig(t *testing.T) *rig {
	t.Helper()
	return newRigClock(t, nil)
}

// newRigClock is newRig with a replaced history clock (installed before
// any instance is recorded), so two rigs built with the same frozen
// clock produce byte-comparable history dumps.
func newRigClock(t *testing.T, clock func() time.Time) *rig {
	t.Helper()
	return newRigStore(t, clock, datastore.NewStore())
}

// newRigStore is newRigClock over a caller-supplied datastore, so two
// rigs can share one content-addressed store — and, with it, a result
// cache whose entries reference blobs in that store. Re-importing the
// catalog into a shared store is idempotent (same bytes, same refs).
func newRigStore(t *testing.T, clock func() time.Time, store *datastore.Store) *rig {
	t.Helper()
	s := schema.Full()
	db := history.NewDB(s)
	if clock != nil {
		db.SetClock(clock)
	}
	r := &rig{s: s, db: db, store: store,
		engine: New(s, db, store, encap.StandardRegistry()),
		ids:    make(map[string]history.ID)}
	imp := func(key, typ, name string, data string) {
		t.Helper()
		rec := history.Instance{Type: typ, Name: name, User: "rig"}
		if data != "" {
			rec.Data = store.Put([]byte(data))
		}
		inst, err := db.Record(rec)
		if err != nil {
			t.Fatalf("import %s: %v", key, err)
		}
		r.ids[key] = inst.ID
	}
	imp("netEdGen", "NetlistEditor", "netlist generator", "generate fulladder")
	imp("netEdCopy", "NetlistEditor", "netlist copier", "retouch rev2")
	imp("layEdGen", "LayoutEditor", "layout generator", "generate fulladder")
	imp("layEdCopy", "LayoutEditor", "layout retoucher", "retouch fixup")
	imp("dmEd", "DeviceModelEditor", "model editor", "default")
	imp("dmEdFast", "DeviceModelEditor", "fast model editor", "fast")
	imp("extractor", "Extractor", "mextra", "")
	imp("sim", "InstalledSimulator", "hspice", "")
	imp("verifier", "Verifier", "lvs", "")
	imp("plotter", "Plotter", "xplot", "")
	imp("placer", "Placer", "row placer", "")
	imp("compiler", "SimulatorCompiler", "cosmos cc", "")
	imp("ropt", "RandomOptimizer", "rand opt", "")
	imp("dopt", "DescentOptimizer", "descent opt", "")
	imp("aopt", "AnnealOptimizer", "anneal opt", "")
	imp("stim", "Stimuli", "exhaustive 3", "stimuli exh\ninterval 10000000\ninputs a b cin\nvector 000\nvector 011\nvector 111\n")
	imp("stim2", "Stimuli", "walk", "stimuli walk\ninterval 10000000\ninputs a b cin\nvector 000\nvector 100\n")
	imp("popts", "PlacementOptions", "default placement", "seed=1 passes=2")
	imp("ogoal", "OptimizationGoal", "speed goal", "target=2000 budget=10 seed=1")
	return r
}

// perfFlow builds the canonical Performance flow and binds all leaves:
// Performance <- (sim, Circuit(DeviceModels<-dmEd, Netlist<-netEdGen), stim).
func (r *rig) perfFlow(t *testing.T) (*flow.Flow, flow.NodeID) {
	t.Helper()
	f := flow.New(r.s, r.db)
	perf := f.MustAdd("Performance")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.ExpandDown(perf, false))
	simN, _ := f.Node(perf).Dep("fd")
	cctN, _ := f.Node(perf).Dep("Circuit")
	stimN, _ := f.Node(perf).Dep("Stimuli")
	must(f.ExpandDown(cctN, false))
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	netN, _ := f.Node(cctN).Dep("Netlist")
	must(f.ExpandDown(dmN, false))
	dmToolN, _ := f.Node(dmN).Dep("fd")
	must(f.Specialize(netN, "EditedNetlist"))
	must(f.ExpandDown(netN, false))
	netToolN, _ := f.Node(netN).Dep("fd")
	must(f.Bind(simN, r.ids["sim"]))
	must(f.Bind(stimN, r.ids["stim"]))
	must(f.Bind(dmToolN, r.ids["dmEd"]))
	must(f.Bind(netToolN, r.ids["netEdGen"]))
	return f, perf
}

func TestRunFlowEndToEnd(t *testing.T) {
	r := newRig(t)
	f, perf := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	// Netlist, DeviceModels, Circuit, Performance = 4 tasks.
	if res.TasksRun != 4 {
		t.Errorf("TasksRun = %d, want 4", res.TasksRun)
	}
	pid, err := res.One(perf)
	if err != nil {
		t.Fatal(err)
	}
	inst := r.db.Get(pid)
	if inst.Type != "Performance" || inst.Tool != r.ids["sim"] {
		t.Errorf("performance instance = %+v", inst)
	}
	// The artifact is a parseable performance report with correct adder
	// results for vector 111 (sum=1, cout=1).
	data, ok := r.store.Get(inst.Data)
	if !ok {
		t.Fatal("performance artifact missing")
	}
	text := string(data)
	if !strings.Contains(text, "performance fulladder") {
		t.Errorf("artifact = %.120q", text)
	}
	if !strings.Contains(text, "sample 2 cout=1 sum=1") {
		t.Errorf("adder result wrong:\n%s", text)
	}
	// Derivation is queryable: the netlist used is in the backchain.
	back, err := r.db.Backchain(pid, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Contains(r.ids["netEdGen"]) {
		t.Error("backchain should reach the netlist editor tool")
	}
}

func TestRunNodeSubflow(t *testing.T) {
	r := newRig(t)
	f, perf := r.perfFlow(t)
	cctN, _ := f.Node(perf).Dep("Circuit")
	netN, _ := f.Node(cctN).Dep("Netlist")
	res, err := r.engine.RunNode(f, netN)
	if err != nil {
		t.Fatalf("RunNode: %v", err)
	}
	if res.TasksRun != 1 {
		t.Errorf("TasksRun = %d, want 1 (only the netlist)", res.TasksRun)
	}
	if _, ok := res.Created[perf]; ok {
		t.Error("sub-flow run must not execute the goal")
	}
}

func TestRunFlowRejectsUnexecutable(t *testing.T) {
	r := newRig(t)
	f := flow.New(r.s, r.db)
	perf := f.MustAdd("Performance")
	if err := f.ExpandDown(perf, false); err != nil {
		t.Fatal(err)
	}
	_, err := r.engine.RunFlow(f)
	if err == nil || !strings.Contains(err.Error(), "not executable") {
		t.Errorf("err = %v", err)
	}
}

func TestMultiOutputSharedTask(t *testing.T) {
	// Fig. 5: ExtractedNetlist and ExtractionStatistics share one
	// extractor run.
	r := newRig(t)
	f := flow.New(r.s, r.db)
	net := f.MustAdd("ExtractedNetlist")
	if err := f.ExpandDown(net, false); err != nil {
		t.Fatal(err)
	}
	extrN, _ := f.Node(net).Dep("fd")
	layN, _ := f.Node(net).Dep("Layout")
	stats := f.MustAdd("ExtractionStatistics")
	if err := f.Connect(stats, "fd", extrN); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(stats, "Layout", layN); err != nil {
		t.Fatal(err)
	}
	if err := f.Specialize(layN, "EditedLayout"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(layN, false); err != nil {
		t.Fatal(err)
	}
	layToolN, _ := f.Node(layN).Dep("fd")
	if err := f.Bind(extrN, r.ids["extractor"]); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(layToolN, r.ids["layEdGen"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	// Layout (1 task) + one shared extraction (1 task) = 2, even though
	// two entities were produced by the extraction.
	if res.TasksRun != 2 {
		t.Errorf("TasksRun = %d, want 2 (extraction shared)", res.TasksRun)
	}
	nid, err := res.One(net)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := res.One(stats)
	if err != nil {
		t.Fatal(err)
	}
	nin, sin := r.db.Get(nid), r.db.Get(sid)
	if nin.Tool != sin.Tool {
		t.Error("siblings should share the tool instance")
	}
	if got, _ := nin.InputFor("Layout"); got != mustInput(t, sin, "Layout") {
		t.Error("siblings should share the layout input")
	}
	sb, _ := r.store.Get(sin.Data)
	if !strings.Contains(string(sb), "extraction statistics") {
		t.Errorf("stats artifact = %.80q", string(sb))
	}
}

func mustInput(t *testing.T, in *history.Instance, key string) history.ID {
	t.Helper()
	id, ok := in.InputFor(key)
	if !ok {
		t.Fatalf("instance %s lacks input %s", in.ID, key)
	}
	return id
}

func TestFanOutOverInstanceSets(t *testing.T) {
	// §4.1: selecting two stimuli instances runs the simulation twice.
	r := newRig(t)
	f, perf := r.perfFlow(t)
	var stimN flow.NodeID
	stimN, _ = f.Node(perf).Dep("Stimuli")
	if err := f.Bind(stimN, r.ids["stim"], r.ids["stim2"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	perfs := res.InstancesOf(perf)
	if len(perfs) != 2 {
		t.Fatalf("performances = %v, want 2", perfs)
	}
	// Each derivation records a different stimuli instance.
	s0, _ := r.db.Get(perfs[0]).InputFor("Stimuli")
	s1, _ := r.db.Get(perfs[1]).InputFor("Stimuli")
	if s0 == s1 {
		t.Error("fan-out should bind different stimuli instances")
	}
	if res.TasksRun != 5 { // netlist, models, circuit, 2 simulations
		t.Errorf("TasksRun = %d, want 5", res.TasksRun)
	}
}

func TestParallelBranchesFaster(t *testing.T) {
	// Fig. 6: disjoint branches on parallel "machines".
	r := newRig(t)
	build := func() *flow.Flow {
		f := flow.New(r.s, r.db)
		for i := 0; i < 4; i++ {
			n := f.MustAdd("EditedNetlist")
			if err := f.ExpandDown(n, false); err != nil {
				t.Fatal(err)
			}
			tn, _ := f.Node(n).Dep("fd")
			if err := f.Bind(tn, r.ids["netEdGen"]); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	const delay = 20 * time.Millisecond
	r.engine.SetTaskDelay(delay)
	defer r.engine.SetTaskDelay(0)

	r.engine.SetWorkers(1)
	serial, err := r.engine.RunFlow(build())
	if err != nil {
		t.Fatal(err)
	}
	r.engine.SetWorkers(4)
	parallel, err := r.engine.RunFlow(build())
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Elapsed*2 >= serial.Elapsed {
		t.Errorf("parallel %v should be well under serial %v", parallel.Elapsed, serial.Elapsed)
	}
	if serial.TasksRun != 4 || parallel.TasksRun != 4 {
		t.Errorf("tasks = %d / %d", serial.TasksRun, parallel.TasksRun)
	}
}

func TestCompositeCheckFailure(t *testing.T) {
	r := newRig(t)
	// A Circuit whose DeviceModels part is garbage must fail the
	// composite consistency check.
	bad, err := r.db.Record(history.Instance{Type: "Stimuli", User: "rig",
		Data: r.store.Put([]byte("not a library"))})
	if err != nil {
		t.Fatal(err)
	}
	_ = bad
	f := flow.New(r.s, r.db)
	cct := f.MustAdd("Circuit")
	if err := f.ExpandDown(cct, false); err != nil {
		t.Fatal(err)
	}
	dmN, _ := f.Node(cct).Dep("DeviceModels")
	netN, _ := f.Node(cct).Dep("Netlist")
	if err := f.Specialize(netN, "EditedNetlist"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(netN, false); err != nil {
		t.Fatal(err)
	}
	netToolN, _ := f.Node(netN).Dep("fd")
	if err := f.Bind(netToolN, r.ids["netEdGen"]); err != nil {
		t.Fatal(err)
	}
	// Bind a DeviceModels instance whose artifact is broken.
	dmBad, err := r.db.Record(history.Instance{Type: "DeviceModels", User: "rig",
		Tool: r.ids["dmEd"], Data: r.store.Put([]byte("garbage"))})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(dmN, dmBad.ID); err != nil {
		t.Fatal(err)
	}
	_, err = r.engine.RunFlow(f)
	if err == nil || !strings.Contains(err.Error(), "consistency check failed") {
		t.Errorf("err = %v", err)
	}
}

func TestCompiledSimulatorToolCreatedInFlow(t *testing.T) {
	// Fig. 2 end to end, in ONE flow: the simulator that runs the
	// performance task is itself constructed by the flow (compiled for
	// the very netlist being simulated), and the netlist node is shared
	// between the compiler and the circuit.
	r := newRig(t)
	f := flow.New(r.s, r.db)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	perf := f.MustAdd("Performance")
	must(f.ExpandDown(perf, false))
	simN, _ := f.Node(perf).Dep("fd")
	cctN, _ := f.Node(perf).Dep("Circuit")
	stimN, _ := f.Node(perf).Dep("Stimuli")
	must(f.ExpandDown(cctN, false))
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	netN, _ := f.Node(cctN).Dep("Netlist")
	must(f.Specialize(netN, "EditedNetlist"))
	must(f.ExpandDown(netN, false))
	netToolN, _ := f.Node(netN).Dep("fd")
	must(f.ExpandDown(dmN, false))
	dmToolN, _ := f.Node(dmN).Dep("fd")
	// The simulator node: specialize to CompiledSimulator and expand —
	// its construction needs the SimulatorCompiler and a Netlist; share
	// the flow's netlist node.
	must(f.Specialize(simN, "CompiledSimulator"))
	must(f.Connect(simN, "Netlist", netN))
	must(f.ExpandDown(simN, false))
	compilerN, _ := f.Node(simN).Dep("fd")

	must(f.Bind(stimN, r.ids["stim"]))
	must(f.Bind(dmToolN, r.ids["dmEd"]))
	must(f.Bind(netToolN, r.ids["netEdGen"]))
	must(f.Bind(compilerN, r.ids["compiler"]))

	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	pid, err := res.One(perf)
	if err != nil {
		t.Fatal(err)
	}
	// The performance derivation names the compiled simulator, whose own
	// derivation names the compiler and the shared netlist.
	pin := r.db.Get(pid)
	simInst := r.db.Get(pin.Tool)
	if simInst.Type != "CompiledSimulator" {
		t.Fatalf("tool = %s", simInst.Type)
	}
	if simInst.Tool != r.ids["compiler"] {
		t.Error("compiled simulator should derive from the compiler")
	}
	netUsedBySim, _ := simInst.InputFor("Netlist")
	cctInst := r.db.Get(mustInput(t, pin, "Circuit"))
	netUsedByCct := mustInput(t, cctInst, "Netlist")
	if netUsedBySim != netUsedByCct {
		t.Error("shared netlist node should yield one shared instance")
	}
	// Functional results: compiled run on the full adder.
	data, _ := r.store.Get(pin.Data)
	if !strings.Contains(string(data), "sample 2 cout=1 sum=1") {
		t.Errorf("compiled simulation wrong:\n%s", string(data))
	}
}

func TestPhysicalFlowFig8(t *testing.T) {
	// Fig. 8: (a) synthesize the physical view from the netlist via the
	// placer; (b) verify the physical view against the netlist by
	// extraction + LVS.
	r := newRig(t)
	f := flow.New(r.s, r.db)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Synthesis: PlacedLayout <- (Placer, Netlist, PlacementOptions).
	lay := f.MustAdd("PlacedLayout")
	must(f.ExpandDown(lay, false))
	placerN, _ := f.Node(lay).Dep("fd")
	netN, _ := f.Node(lay).Dep("Netlist")
	poptsN, _ := f.Node(lay).Dep("PlacementOptions")
	must(f.Specialize(netN, "EditedNetlist"))
	must(f.ExpandDown(netN, false))
	netToolN, _ := f.Node(netN).Dep("fd")
	// Verification: extract the layout and compare against the netlist.
	xnet, err := f.ExpandUp(lay, "ExtractedNetlist", "Layout")
	if err != nil {
		t.Fatal(err)
	}
	must(f.ExpandDown(xnet, false))
	extrN, _ := f.Node(xnet).Dep("fd")
	ver, err := f.ExpandUp(xnet, "Verification", "Netlist/subject")
	if err != nil {
		t.Fatal(err)
	}
	must(f.Connect(ver, "Netlist/reference", netN))
	must(f.ExpandDown(ver, false))
	verToolN, _ := f.Node(ver).Dep("fd")

	must(f.Bind(placerN, r.ids["placer"]))
	must(f.Bind(poptsN, r.ids["popts"]))
	must(f.Bind(netToolN, r.ids["netEdGen"]))
	must(f.Bind(extrN, r.ids["extractor"]))
	must(f.Bind(verToolN, r.ids["verifier"]))

	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	vid, err := res.One(ver)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := r.store.Get(r.db.Get(vid).Data)
	if !strings.Contains(string(data), "MATCH") || strings.Contains(string(data), "MISMATCH") {
		t.Errorf("verification should match:\n%s", string(data))
	}
}

func TestOptimizerToolsAsData(t *testing.T) {
	r := newRig(t)
	f := flow.New(r.s, r.db)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	om := f.MustAdd("OptimizedModels")
	must(f.ExpandDown(om, false))
	optN, _ := f.Node(om).Dep("fd")
	cctN, _ := f.Node(om).Dep("Circuit")
	stimN, _ := f.Node(om).Dep("Stimuli")
	goalN, _ := f.Node(om).Dep("OptimizationGoal")
	engineN, _ := f.Node(om).Dep("Simulator/engine")
	must(f.ExpandDown(cctN, false))
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	netN, _ := f.Node(cctN).Dep("Netlist")
	must(f.ExpandDown(dmN, false))
	dmToolN, _ := f.Node(dmN).Dep("fd")
	must(f.Specialize(netN, "EditedNetlist"))
	must(f.ExpandDown(netN, false))
	netToolN, _ := f.Node(netN).Dep("fd")

	must(f.Bind(optN, r.ids["ropt"]))
	must(f.Bind(stimN, r.ids["stim"]))
	must(f.Bind(goalN, r.ids["ogoal"]))
	must(f.Bind(engineN, r.ids["sim"])) // a tool as a data input
	must(f.Bind(dmToolN, r.ids["dmEd"]))
	must(f.Bind(netToolN, r.ids["netEdGen"]))

	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	oid, err := res.One(om)
	if err != nil {
		t.Fatal(err)
	}
	oin := r.db.Get(oid)
	// The optimized models are DeviceModels by subtype and record the
	// simulator among their inputs.
	if !r.s.IsSubtypeOf(oin.Type, "DeviceModels") {
		t.Errorf("type = %s", oin.Type)
	}
	if got, _ := oin.InputFor("Simulator/engine"); got != r.ids["sim"] {
		t.Error("simulator input not recorded")
	}
	data, _ := r.store.Get(oin.Data)
	if !strings.Contains(string(data), "library") || !strings.Contains(string(data), "random-search") {
		t.Errorf("optimized models artifact:\n%s", string(data))
	}
}

func TestRetraceAfterEdit(t *testing.T) {
	r := newRig(t)
	f, perf := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := res.One(perf)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh: nothing to do.
	rr, err := r.engine.Retrace(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Fresh {
		t.Fatalf("expected fresh, plan: %s", rr.Plan)
	}

	// Edit the netlist: a new version supersedes the one the circuit
	// used.
	cctN, _ := f.Node(perf).Dep("Circuit")
	netN, _ := f.Node(cctN).Dep("Netlist")
	oldNet, err := res.One(netN)
	if err != nil {
		t.Fatal(err)
	}
	oldNetIn := r.db.Get(oldNet)
	oldData, _ := r.store.Get(oldNetIn.Data)
	newNet, err := r.db.Record(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool:   r.ids["netEdCopy"],
		Inputs: []history.Input{{Key: "Netlist", Inst: oldNet}},
		Data:   r.store.Put(append(append([]byte(nil), oldData...), []byte("# rev2\n")...))})
	if err != nil {
		t.Fatal(err)
	}
	_ = newNet

	ood, err := r.db.OutOfDate(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !ood {
		t.Fatal("performance should be stale after the edit")
	}
	rr, err = r.engine.Retrace(pid)
	if err != nil {
		t.Fatalf("Retrace: %v", err)
	}
	if rr.Fresh || len(rr.Rebuilt) != 2 { // circuit + performance
		t.Fatalf("rebuilt = %v", rr.Rebuilt)
	}
	newPid := rr.NewTarget(pid)
	if newPid == pid {
		t.Fatal("target not rebuilt")
	}
	// The new performance derives from the new netlist version.
	nets, err := r.db.DerivedWith(newPid, "Netlist")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nets {
		if n == newNet.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("new performance should derive from %s; derives from %v", newNet.ID, nets)
	}
	// And is itself up to date now.
	ood, err = r.db.OutOfDate(newPid)
	if err != nil {
		t.Fatal(err)
	}
	if ood {
		t.Error("retraced performance should be fresh")
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{Created: map[flow.NodeID][]history.ID{1: {"A:1", "A:2"}}}
	if _, err := res.One(1); err == nil {
		t.Error("One on fan-out should fail")
	}
	if _, err := res.One(99); err == nil {
		t.Error("One on missing node should fail")
	}
	got := res.InstancesOf(1)
	got[0] = "X:9"
	if res.Created[1][0] == "X:9" {
		t.Error("InstancesOf returned live slice")
	}
}

func TestDeterministicInstanceOrder(t *testing.T) {
	// Even with parallel workers, recording order (and hence IDs) is
	// deterministic.
	run := func() string {
		r := newRig(t)
		r.engine.SetWorkers(4)
		f, perf := r.perfFlow(t)
		stimN, _ := f.Node(perf).Dep("Stimuli")
		if err := f.Bind(stimN, r.ids["stim"], r.ids["stim2"]); err != nil {
			t.Fatal(err)
		}
		res, err := r.engine.RunFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(idStrings(res.InstancesOf(perf)), ",")
	}
	if run() != run() {
		t.Error("instance IDs differ across identical parallel runs")
	}
}

func idStrings(ids []history.ID) []string {
	out := make([]string, len(ids))
	for i, x := range ids {
		out[i] = string(x)
	}
	return out
}
