package exec

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/history"
)

// TestRetraceConvergesAfterRandomEdits is the consistency-maintenance
// property: whatever sequence of edits lands on the netlist lineage —
// chains, branches, edits of old versions — a single retrace of the
// performance always yields a fresh instance derived from the newest
// version.
func TestRetraceConvergesAfterRandomEdits(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t)
		f, perfN := r.perfFlow(t)
		res, err := r.engine.RunFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		perf, err := res.One(perfN)
		if err != nil {
			t.Fatal(err)
		}

		// Random edits over the netlist lineage.
		lineage := []history.ID{}
		for _, in := range r.db.InstancesOf("Netlist") {
			lineage = append(lineage, in.ID)
		}
		edits := 1 + rng.Intn(5)
		for i := 0; i < edits; i++ {
			base := lineage[rng.Intn(len(lineage))]
			ef := flow.New(r.s, r.db)
			n := ef.MustAdd("EditedNetlist")
			if err := ef.ExpandDown(n, false); err != nil {
				t.Fatal(err)
			}
			if err := ef.ExpandOptional(n, "Netlist"); err != nil {
				t.Fatal(err)
			}
			tn, _ := ef.Node(n).Dep("fd")
			bn, _ := ef.Node(n).Dep("Netlist")
			if err := ef.Bind(tn, r.ids["netEdCopy"]); err != nil {
				t.Fatal(err)
			}
			if err := ef.Bind(bn, base); err != nil {
				t.Fatal(err)
			}
			eres, err := r.engine.RunFlow(ef)
			if err != nil {
				t.Fatal(err)
			}
			id, err := eres.One(n)
			if err != nil {
				t.Fatal(err)
			}
			lineage = append(lineage, id)
		}

		ood, err := r.db.OutOfDate(perf)
		if err != nil {
			t.Fatal(err)
		}
		if !ood {
			t.Fatalf("seed %d: performance should be stale after %d edit(s)", seed, edits)
		}
		rr, err := r.engine.Retrace(perf)
		if err != nil {
			t.Fatalf("seed %d: retrace: %v", seed, err)
		}
		newPerf := rr.NewTarget(perf)
		if newPerf == perf {
			t.Fatalf("seed %d: retrace did not rebuild the target", seed)
		}
		ood, err = r.db.OutOfDate(newPerf)
		if err != nil {
			t.Fatal(err)
		}
		if ood {
			t.Errorf("seed %d: retraced performance still stale", seed)
		}
		// The new derivation uses the lineage's newest version.
		newest, err := r.db.NewestVersion(lineage[0])
		if err != nil {
			t.Fatal(err)
		}
		nets, err := r.db.DerivedWith(newPerf, "Netlist")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range nets {
			if n == newest {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %d: new performance derives from %v, newest is %s", seed, nets, newest)
		}
	}
}
