package exec

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
)

// TestRandomFlowsAlwaysExecute is the system-level property test: any
// flow constructed by legal schema-guided operations — random goal,
// random specializations, full expansion, leaves bound from the catalog
// — validates, executes, and records well-typed derivations. It
// exercises every tool encapsulation and the engine's scheduling in
// random combinations.
func TestRandomFlowsAlwaysExecute(t *testing.T) {
	goals := []string{
		"Performance", "PerformancePlot", "Verification",
		"ExtractedNetlist", "ExtractionStatistics", "PlacedLayout",
		"EditedNetlist", "EditedLayout", "OptimizedModels",
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t)
		r.engine.SetWorkers(1 + rng.Intn(4))
		goal := goals[rng.Intn(len(goals))]
		f := flow.New(r.s, r.db)
		root := f.MustAdd(goal)
		if err := buildRandom(t, r, f, root, rng, 0, "", goal); err != nil {
			t.Fatalf("seed %d goal %s: build: %v", seed, goal, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d goal %s: invalid flow: %v\n%s", seed, goal, err, f.Render())
		}
		res, err := r.engine.RunFlow(f)
		if err != nil {
			t.Fatalf("seed %d goal %s: run: %v\n%s", seed, goal, err, f.Render())
		}
		id, err := res.One(root)
		if err != nil {
			t.Fatalf("seed %d goal %s: %v", seed, goal, err)
		}
		in := r.db.Get(id)
		if !r.s.Satisfies(in.Type, goal) {
			t.Fatalf("seed %d: result type %s does not satisfy %s", seed, in.Type, goal)
		}
		// The recorded derivation is fully traversable.
		if _, err := r.db.Backchain(id, -1); err != nil {
			t.Fatalf("seed %d: backchain: %v", seed, err)
		}
	}
}

// buildRandom expands a node completely, specializing abstract types at
// random (bounded so recursive layout<->netlist chains terminate) and
// binding leaves from the rig's catalog.
func buildRandom(t *testing.T, r *rig, f *flow.Flow, id flow.NodeID, rng *rand.Rand, depth int, parent, rootGoal string) error {
	t.Helper()
	n := f.Node(id)
	typ := r.s.Type(n.Type)

	// Abstract nodes: specialize. Beyond a depth budget, choose the
	// terminating subtype (the edited variants need no recursive input).
	// The standard-cell placer only accepts gate-level netlists, so a
	// PlacedLayout's netlist is pinned to the edited (gate-level)
	// variant — the choice a designer would make after the placer
	// refused a transistor netlist.
	if typ.Abstract {
		choices := r.s.ConcreteSubtypes(n.Type)
		var pick string
		if n.Type == "Netlist" && parent == "PlacedLayout" {
			pick = "EditedNetlist"
		}
		// The optimizers evaluate with the timing simulator, which needs
		// the logic view; keep their circuits gate-level.
		if n.Type == "Netlist" && rootGoal == "OptimizedModels" {
			pick = "EditedNetlist"
		}
		if pick == "" && depth >= 3 {
			for _, c := range choices {
				if c == "EditedNetlist" || c == "EditedLayout" || c == "InstalledSimulator" {
					pick = c
				}
			}
		}
		if pick == "" {
			pick = choices[rng.Intn(len(choices))]
		}
		if err := f.Specialize(id, pick); err != nil {
			return err
		}
		n = f.Node(id)
		typ = r.s.Type(n.Type)
	}

	// Primitive sources and installed tools: bind an instance.
	if typ.IsPrimitiveSource() {
		key, ok := map[string]string{
			"NetlistEditor": "netEdGen", "LayoutEditor": "layEdGen",
			"DeviceModelEditor": "dmEd", "Extractor": "extractor",
			"InstalledSimulator": "sim", "Verifier": "verifier",
			"Plotter": "plotter", "Placer": "placer",
			"SimulatorCompiler": "compiler", "RandomOptimizer": "ropt",
			"DescentOptimizer": "dopt", "AnnealOptimizer": "aopt",
			"Stimuli": "stim", "PlacementOptions": "popts",
			"OptimizationGoal": "ogoal",
		}[n.Type]
		if !ok {
			t.Fatalf("no rig instance for primitive type %s", n.Type)
		}
		return f.Bind(id, r.ids[key])
	}

	// Constructed node: expand and recurse into every child.
	if err := f.ExpandDown(id, false); err != nil {
		return err
	}
	n = f.Node(id)
	for _, k := range n.DepKeys() {
		c, _ := n.Dep(k)
		if err := buildRandom(t, r, f, c, rng, depth+1, n.Type, rootGoal); err != nil {
			return err
		}
	}
	return nil
}
