package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/flow"
	"repro/internal/memo"
	"repro/internal/storage"
	"repro/internal/trace"
)

// killableLog models kill -9 at a precise point in the WAL stream: it
// accepts (and immediately makes durable) the first killAt records and
// silently drops everything after — exactly what survives a crash
// whose last group-commit covered record killAt. The surviving prefix
// then feeds storage.RecoverRun like any crashed log.
type killableLog struct {
	*storage.MemLog
	n      int
	killAt int
}

func (l *killableLog) Append(rec []byte) error {
	if l.n >= l.killAt {
		return nil // the process is dead: the write never happens
	}
	l.n++
	if err := l.MemLog.Append(rec); err != nil {
		return err
	}
	return l.MemLog.Sync() // everything before the crash point is durable
}

func (l *killableLog) Sync() error {
	if l.n >= l.killAt {
		return nil
	}
	return l.MemLog.Sync()
}

// walEvents decodes a log's committed records back into the event
// stream it persists.
func walEvents(t *testing.T, l storage.Log) []trace.Event {
	t.Helper()
	recs, err := l.Committed()
	if err != nil {
		t.Fatal(err)
	}
	var out []trace.Event
	for _, raw := range recs {
		var rec storage.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("undecodable WAL record: %v", err)
		}
		if rec.Event != nil {
			out = append(out, *rec.Event)
		}
	}
	return out
}

// TestKillAndResume is the crash-recovery acceptance property, for both
// schedulers and for every possible kill point in the WAL stream: a run
// killed after N durable records resumes executing only the remaining
// units, the resumed run's fresh events are exactly the golden stream
// minus the recovered prefix, the final WAL holds the full golden
// stream, and the recorded history is byte-identical to an
// uninterrupted run's.
func TestKillAndResume(t *testing.T) {
	fixed := time.Date(1993, 6, 14, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return fixed }
	ctx := context.Background()

	for _, sched := range []Scheduler{Dataflow, Barrier} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			// Golden: one uninterrupted durable run.
			gold := newRigClock(t, clock)
			fG, _ := gold.perfFlow(t)
			bufG := &trace.Buffer{}
			goldLog := storage.NewMemLog()
			goldWAL := storage.NewRunWAL(goldLog)
			if _, err := gold.engine.RunFlowOptions(ctx, fG,
				&RunOptions{Tracer: bufG, WAL: goldWAL, Scheduler: &sched}); err != nil {
				t.Fatalf("golden run: %v", err)
			}
			if err := goldWAL.Close(); err != nil {
				t.Fatalf("golden WAL close: %v", err)
			}
			golden := bufG.Events()
			goldenHistory := dumpHistory(t, gold.db)
			goldRecs, err := goldLog.Committed()
			if err != nil {
				t.Fatal(err)
			}
			if len(goldRecs) != len(golden) {
				t.Fatalf("golden WAL has %d records for %d events", len(goldRecs), len(golden))
			}

			totalUnits := 0
			for _, ev := range golden {
				if ev.Kind == trace.KindUnitCommitted {
					totalUnits++
				}
			}

			for killAt := 0; killAt < len(goldRecs); killAt++ {
				// Victim: a fresh world killed after killAt durable records.
				victim := newRigClock(t, clock)
				fV, _ := victim.perfFlow(t)
				kl := &killableLog{MemLog: storage.NewMemLog(), killAt: killAt}
				vWAL := storage.NewRunWAL(kl)
				if _, err := victim.engine.RunFlowOptions(ctx, fV,
					&RunOptions{WAL: vWAL, Scheduler: &sched}); err != nil {
					t.Fatalf("killAt=%d victim run: %v", killAt, err)
				}
				_ = vWAL.Close()

				rec, err := storage.RecoverRun(kl.MemLog)
				if err != nil {
					t.Fatalf("killAt=%d recover: %v", killAt, err)
				}
				if rec.Finished {
					t.Fatalf("killAt=%d (of %d) recovered as finished", killAt, len(goldRecs))
				}
				// The recovered prefix is a literal prefix of the golden
				// masked stream.
				wantPrefix := trace.MaskedJSONL(golden[:len(rec.Events)])
				if got := trace.MaskedJSONL(rec.Events); !bytes.Equal(got, wantPrefix) {
					t.Fatalf("killAt=%d recovered prefix diverges from golden:\n got %s\nwant %s", killAt, got, wantPrefix)
				}

				// Resume: fresh session (deterministic bootstrap), same
				// flow, the rewound log, the recovered prefix.
				if err := rec.Rewind(kl.MemLog); err != nil {
					t.Fatalf("killAt=%d rewind: %v", killAt, err)
				}
				resumed := newRigClock(t, clock)
				fR, _ := resumed.perfFlow(t)
				bufR := &trace.Buffer{}
				rWAL := storage.NewRunWAL(kl.MemLog)
				res, err := resumed.engine.RunFlowOptions(ctx, fR,
					&RunOptions{Tracer: bufR, WAL: rWAL, Scheduler: &sched, Resume: rec})
				if err != nil {
					t.Fatalf("killAt=%d resumed run: %v", killAt, err)
				}
				if err := rWAL.Close(); err != nil {
					t.Fatalf("killAt=%d resumed WAL close: %v", killAt, err)
				}

				// Fresh events are the golden stream minus the prefix.
				wantRest := trace.MaskedJSONL(golden[len(rec.Events):])
				if got := trace.MaskedJSONL(bufR.Events()); !bytes.Equal(got, wantRest) {
					t.Fatalf("killAt=%d resumed events diverge:\n got %s\nwant %s", killAt, got, wantRest)
				}
				// The final WAL holds the complete golden stream.
				wantAll := trace.MaskedJSONL(golden)
				if got := trace.MaskedJSONL(walEvents(t, kl.MemLog)); !bytes.Equal(got, wantAll) {
					t.Fatalf("killAt=%d final WAL diverges from golden", killAt)
				}
				// Only the units beyond the recovered prefix executed.
				if want := totalUnits - len(rec.Commits); res.Stats.UnitsRun != want {
					t.Fatalf("killAt=%d resumed run executed %d units, want %d (recovered %d of %d)",
						killAt, res.Stats.UnitsRun, want, len(rec.Commits), totalUnits)
				}
				if res.TasksRun != totalUnits {
					t.Fatalf("killAt=%d resumed run committed %d tasks, want %d", killAt, res.TasksRun, totalUnits)
				}
				// History is byte-identical to the uninterrupted run's.
				if got := dumpHistory(t, resumed.db); !bytes.Equal(got, goldenHistory) {
					t.Fatalf("killAt=%d resumed history diverges from golden", killAt)
				}
			}
		})
	}
}

// TestResumeRejectsMismatchedLog: resuming a log against a different
// flow must fail the ID verification, not commit foreign instances.
func TestResumeRejectsMismatchedLog(t *testing.T) {
	ctx := context.Background()
	victim := newRig(t)
	fV, _ := victim.perfFlow(t)
	ml := storage.NewMemLog()
	w := storage.NewRunWAL(ml)
	if _, err := victim.engine.RunFlowOptions(ctx, fV, &RunOptions{WAL: w}); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	// Drop the RunFinished record so the log looks interrupted.
	recs, _ := ml.Committed()
	if err := ml.Rewind(len(recs) - 1); err != nil {
		t.Fatal(err)
	}
	rec, err := storage.RecoverRun(ml)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Finished || len(rec.Commits) == 0 {
		t.Fatalf("expected an interrupted prefix with commits, got finished=%v commits=%d", rec.Finished, len(rec.Commits))
	}

	// A different world: same schema, but the flow binds a different
	// netlist tool, so the committed IDs cannot match the replan.
	other := newRig(t)
	f := other.chainFlow(t)
	if _, err := other.engine.RunFlowOptions(ctx, f, &RunOptions{Resume: rec, Tracer: &trace.Buffer{}}); err == nil {
		t.Fatal("resuming a foreign log succeeded; want an ID-verification error")
	}
}

// chainFlow builds a small flow structurally different from perfFlow.
func (r *rig) chainFlow(t *testing.T) *flow.Flow {
	t.Helper()
	f := flow.New(r.s, r.db)
	net := f.MustAdd("EditedNetlist")
	if err := f.ExpandDown(net, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(net).Dep("fd")
	if err := f.Bind(tn, r.ids["netEdCopy"]); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestMemoSurvivesRestart is the memo-durability acceptance property: a
// finished run's WAL replayed into a fresh process (fresh store, fresh
// cache) makes a warm rerun hit the cache on every unit — no worker
// pool dispatch, same committed IDs.
func TestMemoSurvivesRestart(t *testing.T) {
	fixed := time.Date(1993, 6, 14, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return fixed }
	ctx := context.Background()

	// First process: a durable memoized run, then the process "dies".
	first := newRigClock(t, clock)
	f1, _ := first.perfFlow(t)
	cache1 := memo.New(0)
	ml := storage.NewMemLog()
	w := storage.NewRunWAL(ml)
	if _, err := first.engine.RunFlowOptions(ctx, f1,
		&RunOptions{WAL: w, Memo: cache1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process: recover the WAL, replay it into a fresh store and
	// cache, and rerun the same flow warm.
	rec, err := storage.RecoverRun(ml)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Finished {
		t.Fatal("completed run did not recover as finished")
	}
	store2 := datastore.NewStore()
	cache2 := memo.New(0)
	if err := rec.Replay(store2, cache2); err != nil {
		t.Fatal(err)
	}
	if cache2.Len() != 4 {
		t.Fatalf("replayed cache holds %d entries, want 4", cache2.Len())
	}

	second := newRigStore(t, clock, store2)
	f2, _ := second.perfFlow(t)
	res, err := second.engine.RunFlowOptions(ctx, f2, &RunOptions{Memo: cache2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 4 {
		t.Fatalf("warm rerun after restart hit %d/4 units", res.Stats.CacheHits)
	}
	if got := dumpHistory(t, second.db); !bytes.Equal(got, dumpHistory(t, first.db)) {
		t.Fatal("warm rerun after restart recorded a different history")
	}
}

// TestResumeRepublishesMemo: a killed memoized run, resumed in a fresh
// process with a fresh cache, republishes the restored units' memo
// entries — the cache ends as warm as an uninterrupted run's.
func TestResumeRepublishesMemo(t *testing.T) {
	fixed := time.Date(1993, 6, 14, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return fixed }
	ctx := context.Background()

	victim := newRigClock(t, clock)
	fV, _ := victim.perfFlow(t)
	kl := &killableLog{MemLog: storage.NewMemLog(), killAt: 8} // mid-run
	w := storage.NewRunWAL(kl)
	if _, err := victim.engine.RunFlowOptions(ctx, fV,
		&RunOptions{WAL: w, Memo: memo.New(0)}); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	rec, err := storage.RecoverRun(kl.MemLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Rewind(kl.MemLog); err != nil {
		t.Fatal(err)
	}
	resumed := newRigClock(t, clock)
	fR, _ := resumed.perfFlow(t)
	cacheR := memo.New(0)
	rWAL := storage.NewRunWAL(kl.MemLog)
	if _, err := resumed.engine.RunFlowOptions(ctx, fR,
		&RunOptions{WAL: rWAL, Memo: cacheR, Resume: rec}); err != nil {
		t.Fatal(err)
	}
	_ = rWAL.Close()
	if cacheR.Len() != 4 {
		t.Fatalf("resumed run's cache holds %d entries, want all 4", cacheR.Len())
	}
}
