package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/faults"
	"repro/internal/history"
	"repro/internal/memo"
)

// Chaos × memo matrix: the cache must stay correct when runs fail.
// Three poisoning avenues are pinned shut — changed inputs served
// stale, failed/timed-out/skipped results cached, retried units caching
// a non-final attempt — by running fault injection against warm and
// cold caches. These run under -race in CI's chaos job.

func TestMemoChaosChangedInputIsNeverServedStale(t *testing.T) {
	r, _ := memoRig(t)
	f, perf := r.perfFlow(t)
	cold, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	coldPerf, _ := cold.One(perf)
	coldData, _ := r.store.Get(r.db.Get(coldPerf).Data)

	// Change one input: different stimuli. Everything upstream of the
	// simulation is untouched and may hit; the simulation must not.
	stimN, _ := f.Node(perf).Dep("Stimuli")
	if err := f.Bind(stimN, r.ids["stim2"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 3 { // netlist, models, circuit — not the sim
		t.Errorf("hits = %d, want 3 (the simulation's input changed)", res.Stats.CacheHits)
	}
	pid, _ := res.One(perf)
	data, _ := r.store.Get(r.db.Get(pid).Data)
	if string(data) == string(coldData) {
		t.Error("changed stimuli produced the cold artifact: stale cache serve")
	}
	if !strings.Contains(string(data), "stimuli walk") && !strings.Contains(string(data), "sample 1") {
		t.Errorf("new-stimuli artifact implausible: %.120q", string(data))
	}
}

func TestMemoChaosFailedRunCachesNothing(t *testing.T) {
	// Every tool site fails permanently: nothing commits, so nothing
	// may be published — a poisoned result must never outlive its run.
	store := datastore.NewStore()
	cache := memo.New(0)
	r := newRigStore(t, nil, store)
	r.engine.SetMemo(cache)
	inj := faults.New(3, faults.Config{PermanentRate: 1})
	inj.Instrument(r.engine.reg)
	f, _ := r.perfFlow(t)
	if _, err := r.engine.RunFlow(f); err == nil {
		t.Fatal("fully faulted run should fail")
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("failed run published %d cache entries", n)
	}

	// A healthy engine sharing the cache gets no hits (nothing was
	// cached) and afterwards has published the real results.
	r2 := newRigStore(t, nil, store)
	r2.engine.SetMemo(cache)
	f2, perf2 := r2.perfFlow(t)
	res, err := r2.engine.RunFlow(f2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("healthy run hit %d entries published by a failed run", res.Stats.CacheHits)
	}
	pid, _ := res.One(perf2)
	data, _ := r2.store.Get(r2.db.Get(pid).Data)
	if !strings.Contains(string(data), "sample 2 cout=1 sum=1") {
		t.Errorf("artifact wrong: %.120q", string(data))
	}
	if cache.Len() != 4 {
		t.Errorf("healthy run published %d entries, want 4", cache.Len())
	}
}

func TestMemoChaosTimedOutRunCachesNothing(t *testing.T) {
	// Hanging tools cut off by the task deadline must not publish.
	r, c := memoRig(t)
	inj := faults.New(5, faults.Config{HangRate: 1, HangLimit: 5 * time.Second})
	inj.Instrument(r.engine.reg)
	r.engine.SetTaskTimeout(10 * time.Millisecond)
	f, _ := r.perfFlow(t)
	if _, err := r.engine.RunFlow(f); err == nil {
		t.Fatal("fully hung run should fail")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("timed-out run published %d cache entries", n)
	}
}

func TestMemoChaosSkippedUnitsNeverCached(t *testing.T) {
	// ContinueOnError: a composite fails its consistency check, its
	// dependent is skipped. Only the units that actually committed may
	// publish.
	r, c := memoRig(t)
	r.engine.SetFailurePolicy(ContinueOnError)
	f, perf := r.perfFlow(t)
	cctN, _ := f.Node(perf).Dep("Circuit")
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	// Rebind DeviceModels to a garbage artifact: the Circuit composite's
	// check fails, Performance is skipped, the Netlist still commits.
	bad, err := r.db.Record(history.Instance{Type: "DeviceModels", User: "rig",
		Tool: r.ids["dmEd"], Data: r.store.Put([]byte("garbage"))})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(dmN, bad.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.RunFlow(f); err == nil {
		t.Fatal("run with failing composite should report the failure")
	}
	if n := c.Len(); n != 1 { // exactly the committed Netlist unit
		t.Fatalf("cache holds %d entries after 1 committed unit", n)
	}
	if s := c.Stats(); s.Puts != 1 {
		t.Fatalf("puts = %d, want 1 (failed and skipped units must not publish)", s.Puts)
	}
}

func TestMemoChaosRetriedUnitCachesOnlyFinalResult(t *testing.T) {
	// Transient faults with retries: the run converges to clean results,
	// and what lands in the cache is the final (successful) output — a
	// warm rig reproduces the clean artifact without any tool runs.
	store := datastore.NewStore()
	cache := memo.New(0)
	r := newRigStore(t, nil, store)
	r.engine.SetMemo(cache)
	inj := faults.New(99, faults.Config{TransientRate: 1, TransientRuns: 1})
	inj.Instrument(r.engine.reg)
	r.engine.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond, Seed: 7})
	f, _ := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("retried run: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("injector produced no retries; the assertion below would be vacuous")
	}
	if cache.Len() != 4 {
		t.Fatalf("retried run published %d entries, want 4", cache.Len())
	}

	warm := newRigStore(t, nil, store)
	warm.engine.SetMemo(cache)
	fWarm, perfWarm := warm.perfFlow(t)
	wres, err := warm.engine.RunFlow(fWarm)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stats.CacheHits != 4 {
		t.Errorf("warm hits = %d, want 4", wres.Stats.CacheHits)
	}
	pid, _ := wres.One(perfWarm)
	data, _ := warm.store.Get(warm.db.Get(pid).Data)
	if !strings.Contains(string(data), "sample 2 cout=1 sum=1") {
		t.Errorf("cached final result wrong: %.120q", string(data))
	}
}
