package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/history"
)

// This file is the multi-run half of the engine: a shared, bounded
// worker pool plus admission control. Every run acquires an admission
// slot before planning (FIFO-fair: runs arriving while the engine is
// saturated queue in arrival order), executes its units over the shared
// pool, and releases the slot when done. Runs that commit to the same
// history database additionally serialize on a per-database lock,
// because the planner pre-assigns instance IDs from the database's
// sequence counter and the determinism contract pins commit order.

const (
	// DefaultMaxConcurrentRuns bounds how many runs may execute at once
	// (SetMaxConcurrentRuns overrides it).
	DefaultMaxConcurrentRuns = 64
	// DefaultMaxQueuedRuns bounds how many admitted-but-waiting runs may
	// queue behind the concurrency bound before the engine refuses new
	// work (SetMaxQueuedRuns overrides it).
	DefaultMaxQueuedRuns = 256
)

// ErrEngineBusy reports that the engine refused a run because both the
// concurrent-run bound and the admission queue are full. Callers match
// it with errors.Is and retry later (or against another engine).
var ErrEngineBusy = errors.New("exec: engine is busy")

// SetMaxConcurrentRuns bounds how many runs execute at once; values
// below 1 are treated as 1. Runs beyond the bound queue FIFO up to the
// queue bound, then are refused with ErrEngineBusy.
func (e *Engine) SetMaxConcurrentRuns(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.maxRuns = n
	e.mu.Unlock()
}

// SetMaxQueuedRuns bounds the admission queue; values below 0 are
// treated as 0 (refuse immediately when saturated).
func (e *Engine) SetMaxQueuedRuns(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	e.maxQueue = n
	e.mu.Unlock()
}

// Runs reports how many runs are currently admitted (executing) and how
// many are queued waiting for admission.
func (e *Engine) Runs() (active, queued int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active, len(e.waiters)
}

// acquire claims an admission slot, queueing FIFO behind the
// concurrent-run bound. It fails with ErrEngineBusy when the queue is
// full, or with ctx's error when the caller is cancelled while waiting.
func (e *Engine) acquire(ctx context.Context) error {
	e.mu.Lock()
	if e.active < e.maxRuns {
		e.active++
		e.mu.Unlock()
		return nil
	}
	if len(e.waiters) >= e.maxQueue {
		active, queued := e.active, len(e.waiters)
		e.mu.Unlock()
		return fmt.Errorf("%w: %d runs active, %d queued (raise SetMaxConcurrentRuns / SetMaxQueuedRuns)",
			ErrEngineBusy, active, queued)
	}
	slot := make(chan struct{})
	e.waiters = append(e.waiters, slot)
	e.mu.Unlock()
	select {
	case <-slot:
		return nil
	case <-ctx.Done():
		e.mu.Lock()
		for i, w := range e.waiters {
			if w == slot {
				e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
				e.mu.Unlock()
				return ctx.Err()
			}
		}
		e.mu.Unlock()
		// The slot was granted between ctx firing and the sweep above:
		// consume it and pass it on so no waiter starves.
		<-slot
		e.release()
		return ctx.Err()
	}
}

// release returns an admission slot, handing it to the oldest waiter if
// any (the waiter inherits the slot, so active is unchanged).
func (e *Engine) release() {
	e.mu.Lock()
	if len(e.waiters) > 0 {
		slot := e.waiters[0]
		e.waiters = e.waiters[1:]
		e.mu.Unlock()
		close(slot)
		return
	}
	e.active--
	e.mu.Unlock()
}

// beginRun admits one run: it acquires an admission slot, ensures the
// shared pool exists (resizing it only while this is the sole admitted
// run, when every pool worker is provably idle), snapshots the engine
// defaults and overlays opts. The caller must e.release() when done.
func (e *Engine) beginRun(ctx context.Context, opts *RunOptions) (*run, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.pool == nil {
		e.pool = newPool(e.workers)
	} else if e.pool.size != e.workers && e.active == 1 && len(e.waiters) == 0 {
		e.pool.stop()
		e.pool = newPool(e.workers)
	}
	cfg := e.defaults
	if cfg.nodeTimeouts != nil {
		nt := make(map[flow.NodeID]time.Duration, len(cfg.nodeTimeouts))
		for k, v := range cfg.nodeTimeouts {
			nt[k] = v
		}
		cfg.nodeTimeouts = nt
	}
	p := e.pool
	e.mu.Unlock()
	return &run{e: e, cfg: cfg.apply(opts), pool: p, workers: p.size}, nil
}

// Close stops the shared worker pool. It fails if runs are still active
// or queued; a closed engine re-creates the pool on the next run, so
// Close is an idle-time resource release, not a terminal state.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.active > 0 || len(e.waiters) > 0 {
		return fmt.Errorf("exec: Close: %d runs active, %d queued", e.active, len(e.waiters))
	}
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	return nil
}

// dbLock serializes the runs committing to one history database.
type dbLock struct {
	mu   sync.Mutex
	refs int
}

// lockDB takes the per-database commit lock, creating it on first use
// and retiring it when the last holder unlocks. Runs with distinct
// databases never contend here.
func (e *Engine) lockDB(db *history.DB) func() {
	e.dbMu.Lock()
	if e.dbLocks == nil {
		e.dbLocks = make(map[*history.DB]*dbLock)
	}
	l := e.dbLocks[db]
	if l == nil {
		l = &dbLock{}
		e.dbLocks[db] = l
	}
	l.refs++
	e.dbMu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		e.dbMu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(e.dbLocks, db)
		}
		e.dbMu.Unlock()
	}
}

// poolTask is one unit of one run, tagged with its run so the shared
// workers can execute units from many runs interleaved.
type poolTask struct {
	r *run
	u unitTask
}

// pool is the engine's shared worker pool: size goroutines draining one
// task channel. Workers hold no per-run state — everything a unit needs
// travels on the task.
type pool struct {
	size  int
	tasks chan poolTask
	wg    sync.WaitGroup
}

func newPool(size int) *pool {
	p := &pool{size: size, tasks: make(chan poolTask)}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.r.workUnit(t.u)
			}
		}()
	}
	return p
}

// stop terminates the workers. Callers must guarantee no run is
// dispatching (every coordinator drains its outstanding units before
// returning, so "no admitted runs" suffices).
func (p *pool) stop() {
	close(p.tasks)
	p.wg.Wait()
}
