package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/history"
	"repro/internal/memo"
)

// This file implements automatic retracing (§3.3): when derived design
// data is out of date with respect to the data it was derived from, the
// recorded derivation history is enough to re-run the affected
// constructions with superseded inputs replaced by their newest
// versions. No flow needs to be kept around — the history *is* the flow
// trace.

// RetraceResult reports one retrace run. On error it is still
// returned: Rebuilt holds the constructions re-run before the failure
// and Elapsed the time spent, so diagnostics can report what did run.
type RetraceResult struct {
	// Plan is the analysis that drove the run.
	Plan *history.RetracePlan
	// Rebuilt maps each re-run construction's old instance to its new
	// one.
	Rebuilt map[history.ID]history.ID
	// Fresh is true when nothing needed to be done.
	Fresh bool
	// CacheHits counts re-run constructions satisfied from the result
	// cache (Engine.SetMemo) without running the tool.
	CacheHits int
	// Elapsed is the wall-clock duration of the retrace.
	Elapsed time.Duration
}

// NewTarget returns the instance that now replaces the retrace target.
func (r *RetraceResult) NewTarget(target history.ID) history.ID {
	if n, ok := r.Rebuilt[target]; ok {
		return n
	}
	return target
}

// Retrace brings the named instance up to date: it plans the retrace
// from the history database and re-executes each stale construction
// with substituted inputs, recording the new instances.
func (e *Engine) Retrace(target history.ID) (*RetraceResult, error) {
	return e.RetraceOptions(context.Background(), target, nil)
}

// RetraceOptions is Retrace under a context with per-run overrides. A
// retrace counts as a run for admission purposes and serializes on its
// history database like any other run.
func (e *Engine) RetraceOptions(ctx context.Context, target history.ID, opts *RunOptions) (*RetraceResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &RetraceResult{Rebuilt: make(map[history.ID]history.ID)}
	fail := func(err error) (*RetraceResult, error) {
		res.Elapsed = time.Since(start)
		return res, err
	}
	r, err := e.beginRun(ctx, opts)
	if err != nil {
		return fail(err)
	}
	defer e.release()
	unlock := e.lockDB(r.cfg.db)
	defer unlock()
	plan, err := r.cfg.db.PlanRetrace(target)
	if err != nil {
		return fail(err)
	}
	res.Plan = plan
	if plan.Fresh() {
		res.Fresh = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	for _, step := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("exec: retrace cancelled: %w", err))
		}
		if err := r.retraceStep(step, res); err != nil {
			return fail(err)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// retraceStep re-runs one construction.
func (r *run) retraceStep(step history.RetraceStep, res *RetraceResult) error {
	old := r.cfg.db.Get(step.Rebuild)
	if old == nil {
		return fmt.Errorf("exec: retrace target %s disappeared", step.Rebuild)
	}
	resolve := func(x history.ID) history.ID {
		if n, ok := res.Rebuilt[x]; ok {
			return n
		}
		if n, ok := step.Replace[x]; ok {
			return n
		}
		return x
	}

	artifact := r.artifactOf

	t := r.cfg.schema.Type(old.Type)
	rec := history.Instance{Type: old.Type, User: r.cfg.user, Name: old.Name,
		Comment: "retrace of " + string(old.ID)}

	if t.Composite {
		parts := make(map[string][]byte, len(old.Inputs))
		for _, in := range old.Inputs {
			inst := resolve(in.Inst)
			b, err := artifact(inst)
			if err != nil {
				return err
			}
			parts[in.Key] = b
			rec.Inputs = append(rec.Inputs, history.Input{Key: in.Key, Inst: inst})
		}
		if check := r.cfg.reg.Check(old.Type); check != nil {
			if err := check(parts); err != nil {
				return fmt.Errorf("exec: retrace composite check: %w", err)
			}
		}
		rec.Data = r.cfg.store.Put(encap.ComposeParts(parts))
	} else {
		toolInst := resolve(old.Tool)
		toolIn := r.cfg.db.Get(toolInst)
		if toolIn == nil {
			return fmt.Errorf("exec: tool instance %s disappeared", toolInst)
		}
		toolArt, err := artifact(toolInst)
		if err != nil {
			return err
		}
		enc, err := r.cfg.reg.Lookup(r.cfg.schema, toolIn.Type)
		if err != nil {
			return err
		}
		req := &encap.Request{Goal: old.Type, ToolType: toolIn.Type, Tool: toolArt,
			Inputs: make(map[string][]byte, len(old.Inputs))}
		inputs := append([]history.Input(nil), old.Inputs...)
		sort.Slice(inputs, func(i, j int) bool { return inputs[i].Key < inputs[j].Key })
		for _, in := range inputs {
			inst := resolve(in.Inst)
			b, err := artifact(inst)
			if err != nil {
				return err
			}
			req.Inputs[in.Key] = b
			rec.Inputs = append(rec.Inputs, history.Input{Key: in.Key, Inst: inst})
		}
		rec.Tool = toolInst
		// The retrace unit keys exactly like an ungrouped scheduler unit
		// (Outputs = the one rebuilt type), so a warm cache from a flow
		// run also accelerates retraces — and vice versa.
		var key memo.Key
		hit := false
		if r.cfg.memo != nil {
			mu := memo.Unit{Goal: old.Type, Outputs: []string{old.Type},
				ToolType: toolIn.Type, Tool: datastore.RefOf(toolArt)}
			for _, in := range rec.Inputs {
				mu.Inputs = append(mu.Inputs, memo.InputRef{
					Key: in.Key, Ref: datastore.RefOf(req.Inputs[in.Key])})
			}
			key = memo.UnitKey(mu)
			if entry, ok := r.cfg.memo.Get(key); ok {
				if ref, ok := entry.Outputs[old.Type]; ok {
					if _, present := r.cfg.store.Get(ref); present {
						rec.Data = ref
						hit = true
						res.CacheHits++
					}
				}
			}
		}
		if !hit {
			out, err := enc.Run(req)
			if err != nil {
				return fmt.Errorf("exec: retrace of %s: %w", old.ID, err)
			}
			data, ok := out[old.Type]
			if !ok {
				return fmt.Errorf("exec: retrace tool run produced no %s", old.Type)
			}
			rec.Data = r.cfg.store.Put(data)
			if r.cfg.memo != nil {
				refs := make(map[string]datastore.Ref, len(out))
				for typ, b := range out {
					refs[typ] = r.cfg.store.Put(b)
				}
				r.cfg.memo.Put(key, memo.Entry{Outputs: refs})
			}
		}
	}

	inst, err := r.cfg.db.Record(rec)
	if err != nil {
		return fmt.Errorf("exec: recording retrace of %s: %w", old.ID, err)
	}
	res.Rebuilt[old.ID] = inst.ID
	return nil
}
