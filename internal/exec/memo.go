package exec

import (
	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/memo"
)

// This file wires the derivation-keyed result cache (internal/memo)
// into the engine as a plan-time/run-time hybrid: unit derivation keys
// are computed on the coordinator the moment a job becomes ready (all
// producer artifacts are then resolvable), hits are completed
// synthetically without visiting a worker, and misses publish their
// results to the cache when the in-order committer records them —
// never earlier, so a failed, timed-out, skipped or cancelled unit can
// never poison the cache, and a retried-then-succeeded unit caches
// only its final committed output.
//
// The cache is safe to share across concurrent runs (it locks
// internally and entries hold content refs): one run's warm results
// accelerate another's. Hit accounting stays per-run — each run's
// Stats.CacheHits counts only the hits its own coordinator served.
//
// The determinism contract survives warm caches untouched: hits flow
// through the same plan-order committer as executed units, so the
// committed instance IDs are exactly the planner's pre-assignment, and
// the trace gains only UnitCacheHit events — dropping them projects a
// warm run onto the cold run it reproduces (see trace_golden_test.go).

// SetMemo installs a derivation-keyed result cache consulted before
// each unit executes and fed from each commit; nil removes it. A cache
// may be shared across engines that share a datastore (entries hold
// content refs, so a cache whose blobs are absent from this engine's
// store simply never hits). Applies to subsequently admitted runs.
func (e *Engine) SetMemo(c *memo.Cache) {
	e.set(func(cfg *runConfig) { cfg.memo = c })
}

// Memo returns the installed result cache, or nil.
func (e *Engine) Memo() *memo.Cache {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.defaults.memo
}

// memoUnit describes one (job, combo) unit by content: the derivation
// the cache keys on. It resolves every combo instance to its content
// address through lookupRef — committed instances carry their ref in
// history and pending artifacts hash once and cache it, so building a
// unit touches no artifact bytes on the common path.
func (r *run) memoUnit(j *plannedJob, ci int) (memo.Unit, error) {
	u := memo.Unit{Goal: j.repType, Composite: j.composite}
	u.Outputs = make([]string, len(j.nodes))
	for i, nid := range j.nodes {
		u.Outputs[i] = r.f.Node(nid).Type
	}
	combo := j.combos[ci]
	u.Inputs = make([]memo.InputRef, 0, len(combo))
	for k, inst := range combo {
		typ, ref, err := r.lookupRef(inst)
		if err != nil {
			return memo.Unit{}, err
		}
		if k == "fd" && !j.composite {
			u.ToolType = typ
			u.Tool = ref
			continue
		}
		u.Inputs = append(u.Inputs, memo.InputRef{Key: k, Ref: ref})
	}
	return u, nil
}

// memoConsult computes a ready unit's derivation key (remembered on the
// job for the commit-time publish) and consults the cache. On a hit it
// reconstructs the outputs from the datastore and returns them; on any
// shortfall — no entry, a missing blob, an output type the entry does
// not cover, a lookup failure — it returns nil and the unit executes
// normally (the worker path re-surfaces any real error).
func (r *run) memoConsult(j *plannedJob, ci int) encap.Outputs {
	if r.cfg.memo == nil {
		return nil
	}
	u, err := r.memoUnit(j, ci)
	if err != nil {
		return nil
	}
	j.memoKeys[ci] = memo.UnitKey(u)
	entry, ok := r.cfg.memo.Get(j.memoKeys[ci])
	if !ok {
		return nil
	}
	out := make(encap.Outputs, len(entry.Outputs))
	for typ, ref := range entry.Outputs {
		// Aliased read: reconstructed outputs flow through the same
		// immutable-artifact paths as executed ones (pending set, commit).
		b, ok := r.cfg.store.GetShared(ref)
		if !ok {
			return nil
		}
		out[typ] = b
	}
	// Every grouped node's type must be covered, or dependents would
	// execute against a hole in the pending set.
	for _, nid := range j.nodes {
		if _, ok := out[r.f.Node(nid).Type]; !ok {
			return nil
		}
	}
	j.cacheHit[ci] = true
	return out
}

// memoPublish stores a just-committed job's executed units in the
// cache. Called by the in-order committer only after recordJob
// succeeded: commit is the cache's write barrier. Units that were
// themselves cache hits are skipped (nothing new to learn), as are
// units whose key could not be computed.
func (r *run) memoPublish(j *plannedJob) {
	if r.cfg.memo == nil || j.memoKeys == nil {
		return
	}
	for ci := range j.combos {
		if j.cacheHit[ci] || j.memoKeys[ci] == "" {
			continue
		}
		out := j.outputs[ci]
		refs := make(map[string]datastore.Ref, len(out))
		for typ, data := range out {
			// recordJob just stored the group outputs and captured their
			// refs; reuse them instead of re-hashing. Secondary outputs
			// (types beyond the grouped nodes) are stored here so they
			// become resolvable for future hits.
			if j.outRefs != nil {
				if ref, ok := j.outRefs[ci][typ]; ok {
					refs[typ] = ref
					continue
				}
			}
			refs[typ] = r.cfg.store.Put(data)
		}
		r.cfg.memo.Put(j.memoKeys[ci], memo.Entry{Outputs: refs})
	}
}
