package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/history"
	"repro/internal/memo"
)

// This file is the execution half of the engine: a dependency-counting
// dataflow scheduler. Jobs whose pending count hits zero enqueue all
// their (job, combo) units; the run's coordinator goroutine hands units
// to the engine's shared worker pool and folds completions back in,
// decrementing dependents — no barrier between dependency levels, so
// one slow task never stalls ready work elsewhere in the graph (the
// Fig. 6 "different machines" actually stay busy). Units from
// concurrent runs interleave on the pool; each unit carries its run, so
// workers stay stateless.
//
// Determinism: execution finishes out of order, but results are
// committed to history strictly in plan order by an in-order committer,
// so recorded instance IDs match the planner's pre-assignment exactly.
// Workers read the artifacts of not-yet-committed producers from an
// in-memory pending set (runState), which is per-run.
//
// Failure: under FailFast (the default) the first unit error stops
// dispatch — in-flight units drain, the committed prefix stays, and
// every error is returned joined (errors.Join), each naming its (node,
// combo). Under ContinueOnError only the dependents of a failed job are
// skipped: everything whose producers succeeded still runs and commits
// with its planner-assigned IDs (the failed/skipped jobs' pre-assigned
// IDs are retired via history.ReserveSeq so later commits line up), and
// the joined error additionally names every skipped node with its
// root-cause producer. Cancelling the run context stops dispatch,
// cancels in-flight attempts, and joins ctx.Err() into the result —
// other runs sharing the engine are unaffected.

// Scheduler selects the engine's scheduling discipline.
type Scheduler int

const (
	// Dataflow dispatches each job the moment its producer jobs finish.
	Dataflow Scheduler = iota
	// Barrier reproduces the level-barrier baseline: every dependency
	// level must drain before the next starts. Same commit order — and
	// therefore identical instance IDs — as Dataflow; it exists to be
	// measured against.
	Barrier
)

func (s Scheduler) String() string {
	if s == Barrier {
		return "barrier"
	}
	return "dataflow"
}

// runState shares not-yet-committed artifacts between workers: planned
// instance IDs resolve here until the committer has recorded them.
type runState struct {
	mu   sync.RWMutex
	arts map[history.ID]pendingArtifact
}

type pendingArtifact struct {
	typ  string
	data []byte
	// ref is the content address of data, computed lazily by lookupRef
	// (only the memoizing coordinator needs it) and cached so a pending
	// artifact consumed by many dependents is hashed once, not per edge.
	ref datastore.Ref
}

// lookup resolves an instance to (type, artifact): the run's pending
// set first, then the history database / datastore / archives. The
// returned bytes may alias engine-owned storage; callers treat
// artifacts as immutable (the same contract pending artifacts already
// have — workers hand the producer's output slice straight to
// dependents).
func (r *run) lookup(inst history.ID) (string, []byte, error) {
	r.st.mu.RLock()
	a, ok := r.st.arts[inst]
	r.st.mu.RUnlock()
	if ok {
		return a.typ, a.data, nil
	}
	typ, data, archive, rev, ok := r.cfg.db.ArtifactInfo(inst)
	if !ok {
		return "", nil, fmt.Errorf("exec: instance %s disappeared", inst)
	}
	b, err := r.artifactFromInfo(inst, data, archive, rev)
	if err != nil {
		return "", nil, err
	}
	return typ, b, nil
}

// lookupRef resolves an instance to (type, content address) without
// materializing artifact bytes when it can be avoided: committed
// store-backed instances carry their ref in history (Instance.Data is
// the store.Put address — zero hashing), pending artifacts hash once
// and cache the result, and only archive-backed or artifact-less
// instances fall back to fetch-and-hash. This is the memoization path's
// replacement for lookup + RefOf, which hashed every input of every
// unit on the coordinator.
func (r *run) lookupRef(inst history.ID) (string, datastore.Ref, error) {
	r.st.mu.RLock()
	a, ok := r.st.arts[inst]
	r.st.mu.RUnlock()
	if ok {
		if a.ref == "" {
			a.ref = datastore.RefOf(a.data)
			r.st.mu.Lock()
			r.st.arts[inst] = a
			r.st.mu.Unlock()
		}
		return a.typ, a.ref, nil
	}
	typ, data, archive, rev, ok := r.cfg.db.ArtifactInfo(inst)
	if !ok {
		return "", "", fmt.Errorf("exec: instance %s disappeared", inst)
	}
	if data != "" {
		return typ, data, nil
	}
	b, err := r.artifactFromInfo(inst, data, archive, rev)
	if err != nil {
		return "", "", err
	}
	return typ, datastore.RefOf(b), nil
}

type unitTask struct {
	j       *plannedJob
	ci      int
	readyAt time.Time
	// hit carries the cache-reconstructed outputs of a unit satisfied by
	// the result cache; such units are completed by the coordinator and
	// never visit a worker.
	hit encap.Outputs
}

type unitResult struct {
	j        *plannedJob
	ci       int
	out      encap.Outputs
	err      error
	attempts int
	timeouts int
	alog     []attemptRec  // one record per attempt, for the tracer
	cacheHit bool          // satisfied from the result cache, no tool run
	wait     time.Duration // ready -> start
	dur      time.Duration // start -> done (all attempts)
}

// workUnit executes one unit on a pool worker and reports the result on
// the run's completion channel. The coordinator is always ready to
// receive while units are outstanding, so the send cannot deadlock the
// shared pool.
func (r *run) workUnit(u unitTask) {
	start := time.Now()
	out, alog, err := r.runUnit(r.ctx, u)
	if err == nil {
		// Surface a tool that dropped an output here, not at commit
		// time: a dependent must never run against a hole in the
		// pending set.
		for _, nid := range u.j.nodes {
			typ := r.f.Node(nid).Type
			if _, ok := out[typ]; !ok {
				err = fmt.Errorf("exec: tool run produced no %s output (has: %s)", typ, outputKeys(out))
				alog[len(alog)-1].errMsg = err.Error()
				break
			}
		}
	}
	timeouts := 0
	for _, a := range alog {
		if a.timedOut {
			timeouts++
		}
	}
	r.doneCh <- unitResult{j: u.j, ci: u.ci, out: out, err: err,
		attempts: len(alog), timeouts: timeouts, alog: alog,
		wait: start.Sub(u.readyAt), dur: time.Since(start)}
}

// execute runs a plan through the shared worker pool and commits
// completed jobs in plan order, filling r.res. It returns the joined
// error of every failed unit plus, under ContinueOnError, one entry per
// skipped node (plus any commit or cancellation error), or nil.
func (r *run) execute(ctx context.Context, p *plan) error {
	f, res := r.f, r.res
	stats := newStats(r.cfg.sched, p)
	res.Stats = stats
	if len(p.jobs) == 0 {
		return nil
	}
	workers := r.workers
	if workers > p.units {
		workers = p.units
	}
	stats.Workers = workers
	tr := r.newRunTracer(p)
	tr.planBuilt(r.cfg.sched, workers)

	r.ctx = ctx
	r.st = &runState{arts: make(map[history.ID]pendingArtifact, p.units)}
	// Unbuffered on purpose: the rendezvous means a worker cannot return
	// to the shared pool with an unreported completion, which is what
	// makes fail-fast deterministic — after a failure folds in, no
	// already-finished worker can have silently accepted more work. The
	// drain fold below keeps the rendezvous cheap: parked senders are
	// collected in one batch.
	r.doneCh = make(chan unitResult)

	queue := make([]unitTask, 0, p.units)
	hits := make([]unitTask, 0, 16) // cache-satisfied units, completed by the coordinator
	ready := func(j *plannedJob) {
		// A ready job's producer artifacts are all resolvable (pending
		// set or history), so this is the earliest point the derivation
		// key exists. Hits go to a separate queue drained by the main
		// loop — completing them here would recurse through complete()
		// and double-ready jobs whose initial pending count is zero.
		now := time.Now()
		for ci := range j.combos {
			u := unitTask{j: j, ci: ci, readyAt: now}
			if out := r.memoConsult(j, ci); out != nil {
				u.hit = out
				hits = append(hits, u)
				continue
			}
			queue = append(queue, u)
		}
	}
	for _, j := range p.jobs {
		j.pending = len(j.deps)
		j.remaining = len(j.combos)
		if r.cfg.memo != nil {
			j.memoKeys = make([]memo.Key, len(j.combos))
			j.cacheHit = make([]bool, len(j.combos))
		}
	}
	// Restore the recovered prefix before the ready scan: resumed jobs
	// are marked done with their logged outputs, their dependents'
	// pending counts drop, and only the remaining work becomes ready.
	if r.cfg.resume != nil {
		if err := r.applyResume(p, tr); err != nil {
			return err
		}
	}
	for _, j := range p.jobs {
		if j.pending == 0 && !j.done {
			ready(j)
		}
	}

	type unitError struct {
		jobIdx, ci int
		err        error
	}
	var (
		stop       bool // stop dispatching and readying
		cancelled  bool
		unitErrs   []unitError
		commitErr  error
		commitIdx  int
		committing = true
	)
	// advance commits every fully executed job at the front of the plan
	// — the in-order committer that pins instance IDs to the plan. Under
	// ContinueOnError it steps over failed and skipped jobs by retiring
	// their pre-assigned instance IDs, so the survivors behind them still
	// commit with exactly the IDs the planner handed out.
	advance := func() {
		for committing && commitIdx < len(p.jobs) {
			j := p.jobs[commitIdx]
			switch {
			case j.done:
				tr.passJob(j)
				if err := r.recordJob(j); err != nil {
					commitErr = err
					committing = false
					stop = true
					return
				}
				res.TasksRun += len(j.combos)
				r.memoPublish(j) // commit is the cache's write barrier
				tr.committedJob(j)
			case r.cfg.policy == ContinueOnError && (j.skipped || (j.failed && j.remaining == 0)):
				tr.passJob(j)
				r.cfg.db.ReserveSeq(len(j.combos) * len(j.nodes))
			default:
				return
			}
			commitIdx++
		}
	}
	// markSkipped transitively retires the dependents of a failed job:
	// they can never become ready, so they are stepped over at commit
	// time and reported against the root-cause job.
	var markSkipped func(idx, root int)
	markSkipped = func(idx, root int) {
		j := p.jobs[idx]
		if j.skipped || j.done || j.failed {
			return
		}
		j.skipped = true
		j.blame = root
		stats.JobsSkipped++
		for _, di := range j.dependents {
			markSkipped(di, root)
		}
	}
	complete := func(d unitResult) {
		tr.observe(d)
		stats.observeUnit(d.j, d.wait, d.dur)
		stats.Retries += d.attempts - 1
		stats.Timeouts += d.timeouts
		if d.cacheHit {
			stats.CacheHits++
		}
		j := d.j
		if d.err != nil {
			stats.UnitsFailed++
			unitErrs = append(unitErrs, unitError{j.idx, d.ci,
				fmt.Errorf("exec: node %d (%s), combo %d/%d [%s]: %w",
					j.nodes[0], j.repType, d.ci+1, len(j.combos), comboString(j.combos[d.ci]), d.err)})
			j.failed = true
			if r.cfg.policy != ContinueOnError {
				stop = true
			}
		} else {
			j.outputs[d.ci] = d.out
		}
		if d.dur > j.dur {
			j.dur = d.dur
		}
		j.remaining--
		if j.failed {
			if r.cfg.policy == ContinueOnError && j.remaining == 0 {
				for _, di := range j.dependents {
					markSkipped(di, j.idx)
				}
				advance()
			}
			return
		}
		if j.remaining > 0 {
			return
		}
		j.done = true
		// Publish outputs so dependents can execute before the commit.
		r.st.mu.Lock()
		for ci := range j.combos {
			for ni, nid := range j.nodes {
				typ := f.Node(nid).Type
				r.st.arts[j.outIDs[ci][ni]] = pendingArtifact{typ: typ, data: j.outputs[ci][typ]}
			}
		}
		r.st.mu.Unlock()
		advance()
		for _, di := range j.dependents {
			dep := p.jobs[di]
			dep.pending--
			if dep.pending == 0 && !dep.skipped && !stop {
				ready(dep)
			}
		}
	}

	// Commit the resumed prefix through the normal committer before any
	// dispatch: recordJob re-records history (verifying the logged IDs
	// against the replanned ones), memoPublish re-feeds the cache —
	// replay rides exactly the path live execution takes, so nothing
	// about commit semantics is special-cased for recovery.
	if r.cfg.resume != nil {
		advance()
	}

	ctxDone := ctx.Done()
	outstanding := 0
	for {
		// Serve cache hits before dispatching: each is a finished unit
		// that never visits a worker. Completing one may ready dependents
		// (and produce further hits), so drain through the same loop.
		if len(hits) > 0 && !stop {
			u := hits[0]
			hits = hits[1:]
			complete(unitResult{j: u.j, ci: u.ci, out: u.hit, attempts: 1,
				alog: []attemptRec{{cacheHit: true}}, cacheHit: true,
				wait: time.Since(u.readyAt)})
			continue
		}
		var sendCh chan poolTask
		var next poolTask
		if len(queue) > 0 && !stop {
			sendCh = r.pool.tasks
			next = poolTask{r: r, u: queue[0]}
		}
		if sendCh == nil && outstanding == 0 {
			break
		}
		select {
		case sendCh <- next:
			queue = queue[1:]
			outstanding++
			// Dispatch burst: hand further ready units to any other
			// parked workers without a trip back through the select.
			for burst := true; burst && len(queue) > 0 && !stop; {
				select {
				case r.pool.tasks <- poolTask{r: r, u: queue[0]}:
					queue = queue[1:]
					outstanding++
				default:
					burst = false
				}
			}
		case d := <-r.doneCh:
			outstanding--
			complete(d)
			// Drain fold: completions buffered while the coordinator was
			// busy are folded in as one batch, so dependents of several
			// finished producers become ready together before the next
			// dispatch decision.
			for fold := true; fold && outstanding > 0; {
				select {
				case d := <-r.doneCh:
					outstanding--
					complete(d)
				default:
					fold = false
				}
			}
		case <-ctxDone:
			cancelled = true
			stop = true
			ctxDone = nil // fire once; in-flight units drain via doneCh
		}
	}
	stats.finish(p)
	tr.finish(stats, res)
	// Durability barrier: everything up to RunFinished must be on
	// stable storage before the run's result is acknowledged. This is
	// the one synchronous fsync of the run — per-unit durability rides
	// the WAL writer's group-commit policy.
	walErr := tr.barrier()

	if len(unitErrs) == 0 && commitErr == nil && !cancelled && walErr == nil {
		return nil
	}
	sort.Slice(unitErrs, func(i, k int) bool {
		if unitErrs[i].jobIdx != unitErrs[k].jobIdx {
			return unitErrs[i].jobIdx < unitErrs[k].jobIdx
		}
		return unitErrs[i].ci < unitErrs[k].ci
	})
	errs := make([]error, 0, len(unitErrs)+2)
	for _, ue := range unitErrs {
		errs = append(errs, ue.err)
	}
	// One entry per skipped node, in plan order, naming the root cause.
	for _, j := range p.jobs {
		if !j.skipped {
			continue
		}
		root := p.jobs[j.blame]
		for _, nid := range j.nodes {
			res.Skipped = append(res.Skipped, nid)
			errs = append(errs, fmt.Errorf("exec: node %d (%s) skipped: producer node %d (%s) failed",
				nid, f.Node(nid).Type, root.nodes[0], root.repType))
		}
	}
	if commitErr != nil {
		errs = append(errs, commitErr)
	}
	if walErr != nil {
		errs = append(errs, walErr)
	}
	if cancelled {
		errs = append(errs, fmt.Errorf("exec: run cancelled: %w", ctx.Err()))
	}
	return errors.Join(errs...)
}

// comboString renders one input combination as "k=inst" pairs in key
// order, for error messages.
func comboString(combo map[string]history.ID) string {
	keys := make([]string, 0, len(combo))
	for k := range combo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, combo[k])
	}
	return strings.Join(parts, " ")
}
