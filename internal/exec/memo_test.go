package exec

import (
	"strings"
	"testing"

	"repro/internal/datastore"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/memo"
)

// Engine-level memoization tests: the derivation-keyed result cache
// (internal/memo) wired into the scheduler and the retracer. The
// invariants pinned here: a warm re-run hits on every unit and still
// mints a fresh, isomorphic derivation history; entries travel between
// engines only together with the datastore blobs they reference; and
// the cache agrees with the consistency layer about what "out of date"
// means (both are content-based).

// memoRig returns a rig with a fresh unbounded result cache installed.
func memoRig(t *testing.T) (*rig, *memo.Cache) {
	t.Helper()
	r := newRig(t)
	c := memo.New(0)
	r.engine.SetMemo(c)
	return r, c
}

func TestMemoWarmRerunHitsEveryUnit(t *testing.T) {
	r, c := memoRig(t)
	f, perf := r.perfFlow(t)
	cold, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.Stats.CacheHits != 0 {
		t.Errorf("cold run claimed %d cache hits", cold.Stats.CacheHits)
	}
	if got := c.Stats().Puts; got != 4 {
		t.Errorf("cold run published %d entries, want 4", got)
	}

	warm, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Stats.CacheHits != 4 || warm.TasksRun != 4 {
		t.Errorf("warm run: hits=%d tasks=%d, want 4/4", warm.Stats.CacheHits, warm.TasksRun)
	}
	assertIsomorphicRerun(t, r.db, f, cold, warm)

	// The warm artifact is the same bytes, reachable from a fresh ID.
	coldPerf, _ := cold.One(perf)
	warmPerf, _ := warm.One(perf)
	if r.db.Get(coldPerf).Data != r.db.Get(warmPerf).Data {
		t.Error("warm performance artifact differs from cold")
	}
}

// assertIsomorphicRerun checks that two runs of the same flow produced
// derivation graphs of identical shape — same node coverage, types,
// artifact content, and input wiring under the old→new instance map —
// with entirely fresh instance IDs on the second run.
func assertIsomorphicRerun(t *testing.T, db *history.DB, f *flow.Flow, a, b *Result) {
	t.Helper()
	if len(a.Created) != len(b.Created) {
		t.Fatalf("node coverage differs: %d vs %d", len(a.Created), len(b.Created))
	}
	m := make(map[history.ID]history.ID)
	for n, ids := range a.Created {
		if f.Node(n).IsBound() {
			continue // bound nodes contribute shared pre-existing instances
		}
		ids2 := b.Created[n]
		if len(ids2) != len(ids) {
			t.Fatalf("node %d: %d vs %d instances", n, len(ids), len(ids2))
		}
		for i := range ids {
			m[ids[i]] = ids2[i]
		}
	}
	mapped := func(x history.ID) history.ID {
		if y, ok := m[x]; ok {
			return y
		}
		return x // bound instances are shared, not re-minted
	}
	for old, nw := range m {
		if old == nw {
			t.Fatalf("re-run reused instance ID %s", old)
		}
		oi, ni := db.Get(old), db.Get(nw)
		if oi == nil || ni == nil {
			t.Fatalf("instance pair %s/%s not recorded", old, nw)
		}
		if oi.Type != ni.Type {
			t.Fatalf("%s -> %s: type %s vs %s", old, nw, oi.Type, ni.Type)
		}
		if oi.Data != ni.Data {
			t.Fatalf("%s -> %s: artifact content differs", old, nw)
		}
		if mapped(oi.Tool) != ni.Tool {
			t.Fatalf("%s -> %s: tool %s vs %s", old, nw, oi.Tool, ni.Tool)
		}
		if len(oi.Inputs) != len(ni.Inputs) {
			t.Fatalf("%s -> %s: input counts differ", old, nw)
		}
		for i := range oi.Inputs {
			if oi.Inputs[i].Key != ni.Inputs[i].Key ||
				mapped(oi.Inputs[i].Inst) != ni.Inputs[i].Inst {
				t.Fatalf("%s -> %s: input %d differs", old, nw, i)
			}
		}
	}
}

func TestMemoDisabledRunsEverything(t *testing.T) {
	r := newRig(t)
	f, _ := r.perfFlow(t)
	if _, err := r.engine.RunFlow(f); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("no cache installed, yet %d hits", res.Stats.CacheHits)
	}
}

func TestMemoSharedAcrossEngines(t *testing.T) {
	// A cache travels between engines that share a datastore: warm
	// entries published by one engine satisfy another.
	store := datastore.NewStore()
	cache := memo.New(0)
	r1 := newRigStore(t, nil, store)
	r1.engine.SetMemo(cache)
	f1, _ := r1.perfFlow(t)
	if _, err := r1.engine.RunFlow(f1); err != nil {
		t.Fatal(err)
	}

	r2 := newRigStore(t, nil, store)
	r2.engine.SetMemo(cache)
	f2, perf2 := r2.perfFlow(t)
	res, err := r2.engine.RunFlow(f2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 4 {
		t.Errorf("hits = %d, want 4", res.Stats.CacheHits)
	}
	pid, _ := res.One(perf2)
	data, ok := r2.store.Get(r2.db.Get(pid).Data)
	if !ok || !strings.Contains(string(data), "sample 2 cout=1 sum=1") {
		t.Errorf("cache-served performance artifact wrong: %.120q", string(data))
	}
}

func TestMemoMissingBlobsAreMisses(t *testing.T) {
	// A cache whose blobs live in another engine's store must not serve
	// anything — an unresolvable entry is a miss, never an error.
	cache := memo.New(0)
	r1, _ := newRig(t), cache
	r1.engine.SetMemo(cache)
	f1, _ := r1.perfFlow(t)
	if _, err := r1.engine.RunFlow(f1); err != nil {
		t.Fatal(err)
	}

	r2 := newRig(t) // separate store: the entries' blobs are absent
	r2.engine.SetMemo(cache)
	f2, perf2 := r2.perfFlow(t)
	res, err := r2.engine.RunFlow(f2)
	if err != nil {
		t.Fatalf("run with unresolvable cache: %v", err)
	}
	// The tool-output blobs are missing from r2's store, so those
	// entries cannot be served. (The Netlist unit's inputs are identical
	// catalog imports present in both stores, and its output blob is
	// also re-created identically — implementation may or may not hit
	// there; what matters is correctness of the result.)
	pid, _ := res.One(perf2)
	data, ok := r2.store.Get(r2.db.Get(pid).Data)
	if !ok || !strings.Contains(string(data), "sample 2 cout=1 sum=1") {
		t.Errorf("performance artifact wrong under blob-less cache: %.120q", string(data))
	}
}

func TestMemoFanOutWarm(t *testing.T) {
	// §4.1 fan-out: each (job, combo) unit is cached independently.
	r, _ := memoRig(t)
	f, perf := r.perfFlow(t)
	stimN, _ := f.Node(perf).Dep("Stimuli")
	if err := f.Bind(stimN, r.ids["stim"], r.ids["stim2"]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.RunFlow(f); err != nil {
		t.Fatal(err)
	}
	warm, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 5 { // netlist, models, circuit, 2 sims
		t.Errorf("hits = %d, want 5", warm.Stats.CacheHits)
	}
}

func TestMemoRetraceHitsFlowEntries(t *testing.T) {
	// Cross-path memoization: a retrace whose substituted inputs land on
	// bytes a flow run already processed is served from the cache.
	r, _ := memoRig(t)
	f, perf := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	pid, _ := res.One(perf)

	cctN, _ := f.Node(perf).Dep("Circuit")
	netN, _ := f.Node(cctN).Dep("Netlist")
	oldNet, _ := res.One(netN)
	oldData, _ := r.store.Get(r.db.Get(oldNet).Data)

	// Edit 1: genuinely new netlist bytes. The retrace must re-run the
	// simulation (miss) and publish the new derivation.
	rev2, err := r.db.Record(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool:   r.ids["netEdCopy"],
		Inputs: []history.Input{{Key: "Netlist", Inst: oldNet}},
		Data:   r.store.Put(append(append([]byte(nil), oldData...), []byte("# rev2\n")...))})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := r.engine.Retrace(pid)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Fresh || rr.CacheHits != 0 {
		t.Fatalf("changed-input retrace: fresh=%v hits=%d, want a full re-run", rr.Fresh, rr.CacheHits)
	}

	// Edit 2: a further version that restores the original bytes. The
	// retraced simulation's inputs are now byte-identical to the cold
	// run, so the cache serves it without running the simulator.
	if _, err := r.db.Record(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool:   r.ids["netEdCopy"],
		Inputs: []history.Input{{Key: "Netlist", Inst: rev2.ID}},
		Data:   r.store.Put(oldData)}); err != nil {
		t.Fatal(err)
	}
	target := rr.NewTarget(pid)
	rr2, err := r.engine.Retrace(target)
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Fresh {
		t.Fatal("reverting edit should still be a (content-differing) supersession of rev2")
	}
	if rr2.CacheHits != 1 { // the Performance simulation; Circuit is a composite
		t.Errorf("retrace cache hits = %d, want 1", rr2.CacheHits)
	}
	// And the reverted result matches the original artifact.
	finalPerf := r.db.Get(rr2.NewTarget(target))
	origPerf := r.db.Get(pid)
	if finalPerf.Data != origPerf.Data {
		t.Error("reverted retrace should reproduce the original performance bytes")
	}
}

func TestMemoAgreesWithStaleness(t *testing.T) {
	// Satellite invariant: the consistency layer and the cache must
	// agree. A supersession with identical bytes is invisible to the
	// cache (same key), so OutOfDate must not report it; a supersession
	// with different bytes is a guaranteed miss, and OutOfDate must
	// report it.
	r, _ := memoRig(t)
	f, perf := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	pid, _ := res.One(perf)
	cctN, _ := f.Node(perf).Dep("Circuit")
	netN, _ := f.Node(cctN).Dep("Netlist")
	netID, _ := res.One(netN)
	netData, _ := r.store.Get(r.db.Get(netID).Data)

	// Identical-bytes supersession: not stale, and a retrace is a no-op
	// — a memo hit would be guaranteed, so re-running would be absurd.
	if _, err := r.db.Record(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool:   r.ids["netEdCopy"],
		Inputs: []history.Input{{Key: "Netlist", Inst: netID}},
		Data:   r.store.Put(netData)}); err != nil {
		t.Fatal(err)
	}
	ood, err := r.db.OutOfDate(pid)
	if err != nil {
		t.Fatal(err)
	}
	if ood {
		t.Error("byte-identical supersession reported out-of-date; cache and consistency disagree")
	}
	rr, err := r.engine.Retrace(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Fresh {
		t.Error("byte-identical supersession triggered a retrace")
	}

	// Changed-bytes supersession: stale, and the retrace's key cannot
	// match any cached entry (fresh input ref), so zero hits.
	if _, err := r.db.Record(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool:   r.ids["netEdCopy"],
		Inputs: []history.Input{{Key: "Netlist", Inst: netID}},
		Data:   r.store.Put(append(append([]byte(nil), netData...), []byte("# changed\n")...))}); err != nil {
		t.Fatal(err)
	}
	ood, err = r.db.OutOfDate(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !ood {
		t.Fatal("changed-bytes supersession not reported out-of-date")
	}
	rr, err = r.engine.Retrace(pid)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Fresh {
		t.Fatal("stale target retrace did nothing")
	}
	if rr.CacheHits != 0 {
		t.Errorf("out-of-date retrace served %d cache hits; a hit is impossible when inputs changed", rr.CacheHits)
	}
}
