package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/history"
)

// Unit tests for the run-statistics layer: Summary rendering, the
// occupancy gauge, the critical-path DP and the queue-wait histogram,
// on hand-built plans (no engine involved).

// statsPlan builds a synthetic plan: jobs[i] has one combo, the given
// type and measured duration, and deps[i] edges (indices must be
// smaller than i so plan order stays topological).
func statsPlan(types []string, durs []time.Duration, deps [][]int) *plan {
	p := &plan{}
	for i, typ := range types {
		j := &plannedJob{idx: i, repType: typ,
			combos: []map[string]history.ID{{}}, dur: durs[i]}
		if deps != nil {
			j.deps = deps[i]
		}
		p.jobs = append(p.jobs, j)
		p.units++
	}
	return p
}

func TestStatsCriticalPathDiamond(t *testing.T) {
	// A(3ms) and B(7ms) feed C(2ms): the critical path is B→C = 9ms over
	// 2 jobs, regardless of how many workers ran it.
	p := statsPlan(
		[]string{"A", "B", "C"},
		[]time.Duration{3 * time.Millisecond, 7 * time.Millisecond, 2 * time.Millisecond},
		[][]int{nil, nil, {0, 1}})
	s := newStats(Dataflow, p)
	s.Workers = 2
	s.finish(p)
	if want := 9 * time.Millisecond; s.CriticalPath != want {
		t.Errorf("CriticalPath = %v, want %v", s.CriticalPath, want)
	}
	if s.CriticalPathJobs != 2 {
		t.Errorf("CriticalPathJobs = %d, want 2", s.CriticalPathJobs)
	}
}

func TestStatsCriticalPathChainBeatsWideLevel(t *testing.T) {
	// A 3-deep chain of 2ms tasks (6ms) beats one independent 5ms task.
	p := statsPlan(
		[]string{"A", "A", "A", "Z"},
		[]time.Duration{2 * time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond},
		[][]int{nil, {0}, {1}, nil})
	s := newStats(Dataflow, p)
	s.finish(p)
	if want := 6 * time.Millisecond; s.CriticalPath != want || s.CriticalPathJobs != 3 {
		t.Errorf("critical path = %v over %d jobs, want %v over 3", s.CriticalPath, s.CriticalPathJobs, want)
	}
}

func TestStatsCriticalPathTieBreakPrefersLongerChain(t *testing.T) {
	// Two paths into C measure the same duration; the DP reports the one
	// with more jobs (5ms direct vs 2+3ms through a chain).
	p := statsPlan(
		[]string{"A", "B", "B2", "C"},
		[]time.Duration{5 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, time.Millisecond},
		[][]int{nil, nil, {1}, {0, 2}})
	s := newStats(Dataflow, p)
	s.finish(p)
	if want := 6 * time.Millisecond; s.CriticalPath != want || s.CriticalPathJobs != 3 {
		t.Errorf("critical path = %v over %d jobs, want %v over 3 (tie broken toward the longer chain)",
			s.CriticalPath, s.CriticalPathJobs, want)
	}
}

func TestStatsOccupancy(t *testing.T) {
	p := statsPlan([]string{"A"}, []time.Duration{0}, nil)
	s := newStats(Dataflow, p)
	s.Workers = 2
	s.Busy = 1500 * time.Millisecond
	s.started = time.Now().Add(-time.Second)
	s.finish(p)
	// Elapsed ≈ 1s (time.Since adds scheduling noise), so occupancy ≈
	// 1.5/(1×2) = 0.75, from above.
	if s.Occupancy < 0.70 || s.Occupancy > 0.76 {
		t.Errorf("Occupancy = %v, want ≈0.75", s.Occupancy)
	}
	// Workers unset → gauge stays zero rather than dividing by zero.
	s2 := newStats(Dataflow, p)
	s2.Busy = time.Second
	s2.finish(p)
	if s2.Occupancy != 0 {
		t.Errorf("Occupancy with no workers = %v, want 0", s2.Occupancy)
	}
}

func TestStatsObserveUnitAggregates(t *testing.T) {
	p := statsPlan([]string{"Sim", "Sim"}, []time.Duration{0, 0}, nil)
	s := newStats(Barrier, p)
	s.observeUnit(p.jobs[0], 50*time.Microsecond, 2*time.Millisecond)
	s.observeUnit(p.jobs[1], 5*time.Millisecond, 3*time.Millisecond)
	if s.UnitsRun != 2 || s.Busy != 5*time.Millisecond {
		t.Errorf("UnitsRun=%d Busy=%v, want 2 / 5ms", s.UnitsRun, s.Busy)
	}
	ts := s.PerTask["Sim"]
	if ts.Runs != 2 || ts.Total != 5*time.Millisecond || ts.Max != 3*time.Millisecond {
		t.Errorf("PerTask[Sim] = %+v", ts)
	}
	// 50µs lands in the ≤100µs bucket, 5ms in the ≤10ms bucket.
	if s.QueueWait.Counts[0] != 1 || s.QueueWait.Counts[2] != 1 {
		t.Errorf("QueueWait.Counts = %v", s.QueueWait.Counts)
	}
}

func TestStatsSummaryContents(t *testing.T) {
	p := statsPlan(
		[]string{"Netlist", "Performance"},
		[]time.Duration{time.Millisecond, 2 * time.Millisecond},
		[][]int{nil, {0}})
	s := newStats(Dataflow, p)
	s.Workers = 2
	s.observeUnit(p.jobs[0], 10*time.Microsecond, time.Millisecond)
	s.observeUnit(p.jobs[1], 10*time.Microsecond, 2*time.Millisecond)
	s.finish(p)
	out := s.Summary()
	for _, want := range []string{
		"scheduler=dataflow workers=2 jobs=2 units=2/2",
		"critical-path=3ms (2 jobs)",
		"queue-wait: ≤100µs:2",
		"Netlist", "Performance", "runs=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "faults:") {
		t.Errorf("fault-free summary must omit the faults line:\n%s", out)
	}
	s.Retries, s.Timeouts = 2, 1
	if out := s.Summary(); !strings.Contains(out, "faults: retries=2 timeouts=1 failed=0 skipped=0") {
		t.Errorf("faulted summary missing faults line:\n%s", out)
	}
}

func TestWaitHistogramRendering(t *testing.T) {
	h := WaitHistogram{Bounds: defaultWaitBounds, Counts: make([]int, len(defaultWaitBounds)+1)}
	if got := h.String(); got != "(empty)" {
		t.Errorf("empty histogram renders %q", got)
	}
	h.observe(100 * time.Microsecond) // boundary: inclusive
	h.observe(101 * time.Microsecond) // next bucket
	h.observe(2 * time.Second)        // overflow bucket
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	out := h.String()
	for _, want := range []string{"≤100µs:1", "≤1ms:1", ">1s:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram %q missing %q", out, want)
		}
	}
}
