package exec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/memo"
	"repro/internal/trace"
)

// Golden-trace regression tests: the masked JSONL rendering of a run's
// event stream is pinned byte for byte in testdata/. Because events are
// emitted in plan commit order with wall-clock fields masked, the same
// flow must produce the same bytes across scheduler disciplines, worker
// interleavings, race-detector runs — and, projected through DropKinds,
// across fault injection. Regenerate with `go test ./internal/exec
// -run TestGoldenTrace -update` after an intentional change.

var updateGoldens = flag.Bool("update", false, "rewrite golden trace files in testdata/")

// runTraced runs the flow with a Buffer sink installed and returns the
// collected events.
func runTraced(t *testing.T, r *rig, f *flow.Flow) []trace.Event {
	t.Helper()
	buf := trace.NewBuffer()
	r.engine.SetTracer(buf)
	if _, err := r.engine.RunFlow(f); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	return buf.Events()
}

// compareGolden diffs got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("trace differs from %s at line %d:\n got: %s\nwant: %s", path, i+1, g, w)
		}
	}
	t.Fatalf("trace differs from %s (length %d vs %d)", path, len(got), len(wl))
}

// fig6BranchFlow is the Fig. 6 disjoint-branch flow: n independent
// EditedNetlist constructions.
func fig6BranchFlow(t *testing.T, r *rig, n int) *flow.Flow {
	t.Helper()
	f := flow.New(r.s, r.db)
	for i := 0; i < n; i++ {
		addBranch(t, r, f)
	}
	return f
}

// TestGoldenTraceFig6AcrossSchedulers pins the masked trace of the
// Fig. 6 flow and asserts both scheduler disciplines produce it
// byte-identically: commit order — not completion order — sequences
// the events, so the discipline is invisible after masking.
func TestGoldenTraceFig6AcrossSchedulers(t *testing.T) {
	for _, sched := range []Scheduler{Dataflow, Barrier} {
		t.Run(sched.String(), func(t *testing.T) {
			r := newRig(t)
			r.engine.SetScheduler(sched)
			r.engine.SetWorkers(4)
			f := fig6BranchFlow(t, r, 8)
			got := trace.MaskedJSONL(runTraced(t, r, f))
			if sched == Barrier && *updateGoldens {
				// The golden is written once, from the Dataflow run; the
				// Barrier run must reproduce it rather than overwrite it.
				*updateGoldens = false
				defer func() { *updateGoldens = true }()
			}
			compareGolden(t, "golden_fig6_trace.jsonl", got)
		})
	}
}

// TestGoldenTracePerfFlow pins the diamond-shaped Performance flow —
// grouped constructions, a composite, real dependencies — including
// the committed instance IDs.
func TestGoldenTracePerfFlow(t *testing.T) {
	r := newRig(t)
	r.engine.SetWorkers(2)
	f, _ := r.perfFlow(t)
	compareGolden(t, "golden_perf_trace.jsonl", trace.MaskedJSONL(runTraced(t, r, f)))
}

// TestGoldenTraceRetriedMatchesClean is the acceptance test for the
// determinism contract: a chaos run whose every tool site fails
// transiently and is retried must produce — after dropping the
// fault-path events (UnitRetried, UnitTimedOut) and masking — exactly
// the clean run's golden trace. UnitCommitted is attempt-free by
// design, so the projection is the identity on everything the history
// can see.
func TestGoldenTraceRetriedMatchesClean(t *testing.T) {
	clean := newRig(t)
	clean.engine.SetWorkers(2)
	fClean, _ := clean.perfFlow(t)
	cleanTrace := trace.MaskedJSONL(runTraced(t, clean, fClean))
	compareGolden(t, "golden_perf_trace.jsonl", cleanTrace)

	faulty := newRig(t)
	inj := faults.New(99, faults.Config{TransientRate: 1, TransientRuns: 1})
	inj.Instrument(faulty.engine.reg)
	faulty.engine.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond, Seed: 7})
	faulty.engine.SetWorkers(2)
	fFaulty, _ := faulty.perfFlow(t)
	events := runTraced(t, faulty, fFaulty)

	retried := 0
	for _, ev := range events {
		if ev.Kind == trace.KindUnitRetried {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("injector produced no UnitRetried events; the projection below would be vacuous")
	}
	projected := trace.MaskedJSONL(trace.DropKinds(events, trace.KindUnitRetried, trace.KindUnitTimedOut))
	if !bytes.Equal(projected, cleanTrace) {
		t.Errorf("retried trace (with %d retries dropped) differs from the clean golden:\n--- clean ---\n%s\n--- retried ---\n%s",
			retried, cleanTrace, projected)
	}
}

// TestGoldenTraceWarmMatchesClean is the memoization analogue of the
// retried≡clean projection: a warm-cache run — every unit served from
// the derivation-keyed result cache, no tool executed — must produce,
// after dropping the UnitCacheHit events and masking, exactly the cold
// run's golden trace, committed instance IDs included. The cold rig and
// the warm rig share the datastore and the cache but have separate
// history databases, so equal instance IDs demonstrate the planner's
// pre-assignment, not shared state. Pinned for both schedulers.
func TestGoldenTraceWarmMatchesClean(t *testing.T) {
	for _, sched := range []Scheduler{Dataflow, Barrier} {
		t.Run(sched.String(), func(t *testing.T) {
			store := datastore.NewStore()
			cache := memo.New(0)

			cold := newRigStore(t, nil, store)
			cold.engine.SetMemo(cache)
			cold.engine.SetScheduler(sched)
			cold.engine.SetWorkers(2)
			fCold, _ := cold.perfFlow(t)
			cleanTrace := trace.MaskedJSONL(runTraced(t, cold, fCold))
			// A cold run with the cache installed is indistinguishable
			// from one without it.
			compareGolden(t, "golden_perf_trace.jsonl", cleanTrace)

			warm := newRigStore(t, nil, store)
			warm.engine.SetMemo(cache)
			warm.engine.SetScheduler(sched)
			warm.engine.SetWorkers(2)
			fWarm, _ := warm.perfFlow(t)
			events := runTraced(t, warm, fWarm)

			hits := 0
			for _, ev := range events {
				if ev.Kind == trace.KindUnitCacheHit {
					hits++
				}
			}
			if hits != 4 {
				t.Fatalf("warm run hit %d of 4 units; the projection below would be vacuous", hits)
			}
			projected := trace.MaskedJSONL(trace.DropKinds(events, trace.KindUnitCacheHit))
			if !bytes.Equal(projected, cleanTrace) {
				t.Errorf("warm trace (with %d cache hits dropped) differs from the clean golden:\n--- clean ---\n%s\n--- warm ---\n%s",
					hits, cleanTrace, projected)
			}
		})
	}
}
