// Package exec is the task-execution engine of the flow manager: it
// turns a dynamically defined flow (package flow) into tool runs
// (package encap), records every created object in the design history
// (package history) and its artifact in the datastore, and implements
// the framework services of §3.3:
//
//   - automatic task sequencing from the dependencies in the task graph,
//     via a dependency-counting dataflow scheduler (see sched.go): a job
//     dispatches the moment its producers finish, with no barrier
//     between dependency levels;
//   - parallel execution of independent work, as on the "different
//     machines" of Fig. 6 (a worker pool with optional simulated
//     per-task dispatch latency);
//   - fan-out over multi-instance bindings (§4.1: selecting a set of
//     instances causes the task to be run for each combination);
//   - multi-output tasks: sibling nodes sharing one construction are
//     computed by a single tool run (Fig. 5);
//   - composite entities with their implicit compose function and
//     consistency checks;
//   - automatic retracing of stale derivations (consistency
//     maintenance).
//
// One long-lived Engine executes many flows concurrently: every run
// snapshots the engine configuration at admission into a per-run
// context (the run type), executes over the engine's shared, bounded
// worker pool, and commits to its own history database. Admission
// control bounds how many runs are in flight (see pool.go); runs that
// share one history database serialize on it, because the determinism
// contract pins commit order per database.
//
// Execution is observable: every run returns per-task wall times, worker
// occupancy, the measured critical path and a queue-wait histogram on
// Result.Stats.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/memo"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DefaultMaxCombos bounds the cartesian product a single node's
// multi-instance bindings may fan out into (SetMaxCombos overrides it).
// Generous — real flows fan out into dozens of combos, not tens of
// thousands — but finite, so an adversarial binding fails with a clear
// error instead of exhausting memory.
const DefaultMaxCombos = 100_000

// runConfig is the complete configuration of one run. The engine holds
// the mutable defaults (guarded by Engine.mu, mutated by the setters);
// every run snapshots them at admission and overlays its RunOptions, so
// a run's configuration is immutable for the run's whole lifetime no
// matter what the setters do meanwhile.
type runConfig struct {
	schema       *schema.Schema
	reg          *encap.Registry
	db           *history.DB
	store        *datastore.Store
	archives     func(name string, rev int) (string, error)
	user         string
	label        string
	sched        Scheduler
	maxCombos    int
	taskDelay    time.Duration
	delayFn      func(node flow.NodeID, goal string) time.Duration
	retry        RetryPolicy
	policy       FailurePolicy
	taskTimeout  time.Duration
	nodeTimeouts map[flow.NodeID]time.Duration
	tracer       trace.Sink
	memo         *memo.Cache
	wal          *storage.RunWAL
	resume       *storage.Recovered
}

// Engine executes flows against one schema and encapsulation registry.
// A single long-lived Engine serves many concurrent runs over a shared,
// bounded worker pool: each run snapshots the engine's configuration at
// admission, so the setters are safe to call at any time — they apply
// to runs admitted afterwards and never to a run in flight. Per-run
// overrides (its own history database, datastore, tracer, result
// cache, …) are passed through RunOptions.
//
// Runs that commit to the same history database are serialized on it:
// the planner pre-assigns instance IDs from the database's sequence
// counter, so only one run at a time may hold a database's commit
// window. Give each run its own database (RunOptions.DB) for true
// concurrency; the content-addressed datastore and the result cache
// are safe to share.
type Engine struct {
	schema *schema.Schema
	reg    *encap.Registry

	// mu guards the defaults, the pool, and the admission state below
	// (active, waiters).
	mu       sync.Mutex
	defaults runConfig
	workers  int
	maxRuns  int
	maxQueue int
	pool     *pool
	active   int
	waiters  []chan struct{}

	// dbMu guards dbLocks, the per-database commit locks.
	dbMu    sync.Mutex
	dbLocks map[*history.DB]*dbLock
}

// New creates an engine. workers defaults to 1 (fully serial); use
// SetWorkers to allow parallel branches.
func New(s *schema.Schema, db *history.DB, store *datastore.Store, reg *encap.Registry) *Engine {
	return &Engine{
		schema:   s,
		reg:      reg,
		defaults: runConfig{schema: s, reg: reg, db: db, store: store, user: "designer", maxCombos: DefaultMaxCombos},
		workers:  1,
		maxRuns:  DefaultMaxConcurrentRuns,
		maxQueue: DefaultMaxQueuedRuns,
	}
}

// set runs fn on the engine's default configuration under the lock.
// Every setter routes through here: the mutation is visible to runs
// admitted afterwards and invisible to runs in flight (they hold their
// own snapshot), so calling a setter during a run is safe — it simply
// applies to subsequent runs only.
func (e *Engine) set(fn func(c *runConfig)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn(&e.defaults)
}

// SetUser sets the user recorded on created instances. Applies to
// subsequently admitted runs.
func (e *Engine) SetUser(u string) {
	e.set(func(c *runConfig) { c.user = u })
}

// SetWorkers sets the size of the shared worker pool ("machines");
// values below 1 are treated as 1. The pool is resized lazily: the
// next run admitted while no other run is in flight swaps it.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// SetScheduler selects the scheduling discipline: Dataflow (default) or
// the Barrier baseline. Both record identical instance IDs for the same
// flow; Barrier exists so the level-barrier cost can be measured.
// Applies to subsequently admitted runs.
func (e *Engine) SetScheduler(s Scheduler) {
	e.set(func(c *runConfig) { c.sched = s })
}

// SetMaxCombos caps the cartesian product of input combinations a single
// node may fan out into (§4.1 multi-instance bindings). Runs exceeding
// the cap fail with a clear error instead of exhausting memory. Values
// below 1 restore DefaultMaxCombos. Applies to subsequently admitted
// runs.
func (e *Engine) SetMaxCombos(n int) {
	if n < 1 {
		n = DefaultMaxCombos
	}
	e.set(func(c *runConfig) { c.maxCombos = n })
}

// SetTaskDelay adds a simulated dispatch latency to every tool run —
// the stand-in for remote-machine tool startup used when demonstrating
// Fig. 6 (parallel branches win by ~workers×). Applies to subsequently
// admitted runs.
func (e *Engine) SetTaskDelay(d time.Duration) {
	e.set(func(c *runConfig) { c.taskDelay = d })
}

// SetTaskDelayFunc installs a per-task simulated latency keyed by the
// representative node and the goal type, for benchmarks that need
// unbalanced flows (some branches slow, some fast). When set it takes
// precedence over SetTaskDelay; pass nil to remove it. Applies to
// subsequently admitted runs.
func (e *Engine) SetTaskDelayFunc(fn func(node flow.NodeID, goal string) time.Duration) {
	e.set(func(c *runConfig) { c.delayFn = fn })
}

// SetArchiveSource supplies the checkout function for archive-backed
// instances (footnote 5: instances whose artifact lives at a revision of
// a shared archive rather than as a blob). Applies to subsequently
// admitted runs.
func (e *Engine) SetArchiveSource(checkout func(name string, rev int) (string, error)) {
	e.set(func(c *runConfig) { c.archives = checkout })
}

// DB returns the engine's default history database.
func (e *Engine) DB() *history.DB {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.defaults.db
}

// Store returns the engine's default datastore.
func (e *Engine) Store() *datastore.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.defaults.store
}

// RunOptions override the engine's configuration for a single run. Nil
// and zero fields inherit the engine default. The usual multi-tenant
// arrangement gives each run its own history database (so commit
// windows never contend) while sharing the engine's datastore and
// result cache, which are content-addressed and safe to share.
type RunOptions struct {
	// Schema is the task schema the run plans and validates against.
	// Overriding it (with Registry and DB) lets one long-lived engine
	// execute flows from methodologies it was not built with — the
	// service runs declarative scenarios this way.
	Schema *schema.Schema
	// Registry supplies the run's tool encapsulations.
	Registry *encap.Registry
	// DB is the history database the run plans against and commits to.
	DB *history.DB
	// Store is the artifact store of the run.
	Store *datastore.Store
	// User is recorded on created instances.
	User string
	// Label tags every trace event of the run (Event.Run), so streams
	// from concurrent runs sharing one sink stay attributable.
	Label string
	// Tracer receives the run's events (see internal/trace).
	Tracer trace.Sink
	// Memo is the derivation-keyed result cache to consult and feed.
	Memo *memo.Cache
	// WAL is the run's write-ahead log writer: every trace event is
	// appended to it, with UnitCommitted events additionally carrying
	// the unit's durable payload (artifacts + derivation key), and the
	// run forces a durability barrier before returning. The caller owns
	// the WAL (and its underlying log) and closes it after the run.
	WAL *storage.RunWAL
	// Resume carries a recovered WAL prefix (see storage.RecoverRun):
	// the run verifies the prefix against its replanned IDs, replays
	// the committed units through the normal committer — re-recording
	// history, datastore and memo without re-running tools — and
	// executes only the remaining units, with event Seq continuing
	// exactly where the prefix ends.
	Resume *storage.Recovered
	// Scheduler overrides the scheduling discipline.
	Scheduler *Scheduler
	// Retry overrides the per-unit retry policy.
	Retry *RetryPolicy
	// Policy overrides the failure policy.
	Policy *FailurePolicy
	// TaskTimeout overrides the per-attempt deadline (0 disables it).
	TaskTimeout *time.Duration
	// TaskDelay overrides the simulated dispatch latency (and clears
	// any engine-level delay function).
	TaskDelay *time.Duration
	// MaxCombos overrides the fan-out cap when positive.
	MaxCombos int
}

// apply overlays non-zero options on a snapshot of the defaults.
func (c runConfig) apply(o *RunOptions) runConfig {
	if o == nil {
		return c
	}
	if o.Schema != nil {
		c.schema = o.Schema
	}
	if o.Registry != nil {
		c.reg = o.Registry
	}
	if o.DB != nil {
		c.db = o.DB
	}
	if o.Store != nil {
		c.store = o.Store
	}
	if o.User != "" {
		c.user = o.User
	}
	if o.Label != "" {
		c.label = o.Label
	}
	if o.Tracer != nil {
		c.tracer = o.Tracer
	}
	if o.Memo != nil {
		c.memo = o.Memo
	}
	if o.WAL != nil {
		c.wal = o.WAL
	}
	if o.Resume != nil {
		c.resume = o.Resume
	}
	if o.Scheduler != nil {
		c.sched = *o.Scheduler
	}
	if o.Retry != nil {
		c.retry = *o.Retry
	}
	if o.Policy != nil {
		c.policy = *o.Policy
	}
	if o.TaskTimeout != nil {
		c.taskTimeout = *o.TaskTimeout
	}
	if o.TaskDelay != nil {
		c.taskDelay = *o.TaskDelay
		c.delayFn = nil
	}
	if o.MaxCombos > 0 {
		c.maxCombos = o.MaxCombos
	}
	return c
}

// run is the per-run context: one flow execution's complete state — its
// immutable configuration snapshot, plan, pending-artifact set, result,
// and the channel its pool workers report completions on. Nothing here
// is shared between runs except the pool reference and whatever the
// configuration deliberately shares (datastore, result cache).
type run struct {
	e       *Engine
	cfg     runConfig
	pool    *pool
	workers int // pool size at admission (Stats.Workers is min of this and the unit count)

	f   *flow.Flow
	res *Result

	// Execution state, set by execute.
	ctx    context.Context
	st     *runState
	doneCh chan unitResult
}

// Result reports one flow run. On error the result is still returned:
// Elapsed is the time spent before failing, Created holds the bound
// instances plus everything committed before the failure, and Stats
// describes the partial schedule — the raw material for failure
// diagnostics and retracing.
type Result struct {
	// Created maps each executed node to the instances that realized it
	// (bound instances pass through unchanged).
	Created map[flow.NodeID][]history.ID
	// TasksRun counts tool executions (compositions included) whose
	// results were committed to history.
	TasksRun int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Skipped lists the nodes of constructions that never ran because a
	// producer failed (ContinueOnError graceful degradation), in plan
	// order. Empty on success and under FailFast.
	Skipped []flow.NodeID
	// Stats describes how the run was scheduled; nil when the run failed
	// before planning finished.
	Stats *Stats
}

// InstancesOf returns the instances created for a node.
func (r *Result) InstancesOf(id flow.NodeID) []history.ID {
	return append([]history.ID(nil), r.Created[id]...)
}

// One returns the single instance created for a node, failing when the
// node fanned out to several or none.
func (r *Result) One(id flow.NodeID) (history.ID, error) {
	insts := r.Created[id]
	if len(insts) != 1 {
		return "", fmt.Errorf("exec: node %d produced %d instances, want 1", id, len(insts))
	}
	return insts[0], nil
}

// RunFlow executes every root of the flow (and hence every needed
// node). On error the returned Result still carries partial state (see
// Result).
func (e *Engine) RunFlow(f *flow.Flow) (*Result, error) {
	return e.RunFlowOptions(context.Background(), f, nil)
}

// RunFlowContext is RunFlow under a context: cancelling ctx stops
// dispatching, cuts off well-behaved in-flight tools (Request.Ctx), and
// returns the partial Result with ctx's error joined in. Cancellation
// is per-run: other runs sharing the engine are unaffected.
func (e *Engine) RunFlowContext(ctx context.Context, f *flow.Flow) (*Result, error) {
	return e.RunFlowOptions(ctx, f, nil)
}

// RunFlowOptions is RunFlowContext with per-run overrides of the
// engine's configuration (see RunOptions).
func (e *Engine) RunFlowOptions(ctx context.Context, f *flow.Flow, opts *RunOptions) (*Result, error) {
	return e.runTargets(ctx, f, f.Roots(), opts)
}

// RunNode executes the sub-flow rooted at one node — §4.1's "a sub-flow
// may be run at any stage as long as its dependencies are satisfied
// independently of the remainder of the flow".
func (e *Engine) RunNode(f *flow.Flow, id flow.NodeID) (*Result, error) {
	return e.RunNodeOptions(context.Background(), f, id, nil)
}

// RunNodeContext is RunNode under a context (see RunFlowContext).
func (e *Engine) RunNodeContext(ctx context.Context, f *flow.Flow, id flow.NodeID) (*Result, error) {
	return e.RunNodeOptions(ctx, f, id, nil)
}

// RunNodeOptions is RunNodeContext with per-run overrides (see
// RunOptions).
func (e *Engine) RunNodeOptions(ctx context.Context, f *flow.Flow, id flow.NodeID, opts *RunOptions) (*Result, error) {
	if f.Node(id) == nil {
		return nil, fmt.Errorf("exec: no node %d", id)
	}
	return e.runTargets(ctx, f, []flow.NodeID{id}, opts)
}

// DryPlan validates the flow and builds — then discards — the
// execution plan for its roots: no admission, no tool run, no commit.
// It returns the plan's job and unit counts. The planner reads the
// history database's sequence counter to pre-assign instance IDs but
// writes nothing, so a dry plan is safe at any time; benchmarks use it
// to measure planning cost in isolation from execution.
func (e *Engine) DryPlan(f *flow.Flow) (jobs, units int, err error) {
	e.mu.Lock()
	cfg := e.defaults
	e.mu.Unlock()
	if err := f.Validate(); err != nil {
		return 0, 0, err
	}
	targets := f.Roots()
	if ok, why := f.ExecutableAll(targets); !ok {
		return 0, 0, fmt.Errorf("exec: flow is not executable: %s", why)
	}
	r := &run{e: e, cfg: cfg, f: f}
	p, err := r.plan(targets)
	if err != nil {
		return 0, 0, err
	}
	return len(p.jobs), p.units, nil
}

func (e *Engine) runTargets(ctx context.Context, f *flow.Flow, targets []flow.NodeID, opts *RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{Created: make(map[flow.NodeID][]history.ID)}
	fail := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		return res, err
	}
	r, err := e.beginRun(ctx, opts)
	if err != nil {
		return fail(err)
	}
	defer e.release()
	// One run at a time per history database: the plan below reads the
	// database's sequence counter and pre-assigns every instance ID, so
	// the run must own the commit window until its last job lands.
	unlock := e.lockDB(r.cfg.db)
	defer unlock()
	r.f, r.res = f, res
	if err := f.Validate(); err != nil {
		return fail(err)
	}
	if ok, why := f.ExecutableAll(targets); !ok {
		return fail(fmt.Errorf("exec: flow is not executable: %s", why))
	}
	p, err := r.plan(targets)
	if err != nil {
		return fail(err)
	}
	for id, insts := range p.bound {
		res.Created[id] = insts
	}
	if err := r.execute(ctx, p); err != nil {
		return fail(err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// artifactOf fetches an instance's artifact: from the blob store when a
// Data ref is present, from the archive source when the instance is
// archive-backed, or nil for artifact-less instances (installed tools).
func (r *run) artifactOf(inst history.ID) ([]byte, error) {
	in := r.cfg.db.Get(inst)
	if in == nil {
		return nil, fmt.Errorf("exec: instance %s disappeared", inst)
	}
	return r.artifactOfInstance(in)
}

func (r *run) artifactOfInstance(in *history.Instance) ([]byte, error) {
	return r.artifactFromInfo(in.ID, in.Data, in.Archive, in.Revision)
}

// artifactFromInfo fetches artifact bytes from their storage location
// (blob store ref, archive name+revision, or neither for artifact-less
// installed tools) without requiring a materialized Instance — the
// zero-copy path behind lookup/lookupRef, fed by db.ArtifactInfo.
// Store-backed reads alias the store's single physical copy (GetShared):
// the engine treats artifacts as immutable everywhere.
func (r *run) artifactFromInfo(id history.ID, data datastore.Ref, archive string, revision int) ([]byte, error) {
	if data != "" {
		b, ok := r.cfg.store.GetShared(data)
		if !ok {
			return nil, fmt.Errorf("exec: artifact %s of %s missing from datastore", data, id)
		}
		return b, nil
	}
	if archive != "" {
		if r.cfg.archives == nil {
			return nil, fmt.Errorf("exec: instance %s is archive-backed but no archive source is configured", id)
		}
		text, err := r.cfg.archives(archive, revision)
		if err != nil {
			return nil, fmt.Errorf("exec: checkout of %s: %w", id, err)
		}
		return []byte(text), nil
	}
	return nil, nil
}

// taskSignature groups sibling nodes that share one construction (same
// tool node and same input nodes under the same keys): they are computed
// by a single tool run with multiple outputs.
func taskSignature(f *flow.Flow, id flow.NodeID) string {
	n := f.Node(id)
	keys := n.DepKeys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		c, _ := n.Dep(k)
		parts = append(parts, fmt.Sprintf("%s=%d", k, c))
	}
	return strings.Join(parts, ",")
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// executeCombo performs one tool run (or composition) for one input
// combination. Instances resolve through the run's lookup — the
// in-flight pending set for planned instances not yet committed, the
// database otherwise.
func (r *run) executeCombo(ctx context.Context, j *plannedJob, combo map[string]history.ID) (encap.Outputs, error) {
	rep := r.f.Node(j.nodes[0])
	var delay time.Duration
	if r.cfg.delayFn != nil {
		delay = r.cfg.delayFn(j.nodes[0], rep.Type)
	} else {
		delay = r.cfg.taskDelay
	}
	if delay > 0 {
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
	}

	if j.composite {
		parts := make(map[string][]byte, len(combo))
		for k, inst := range combo {
			_, b, err := r.lookup(inst)
			if err != nil {
				return nil, err
			}
			parts[k] = b
		}
		if check := r.cfg.reg.Check(rep.Type); check != nil {
			if err := check(parts); err != nil {
				return nil, fmt.Errorf("exec: composite %s consistency check failed: %w", rep.Type, err)
			}
		}
		return encap.Outputs{rep.Type: encap.ComposeParts(parts)}, nil
	}

	toolInst, ok := combo["fd"]
	if !ok {
		return nil, fmt.Errorf("exec: task %s has no tool instance", rep.Type)
	}
	toolType, toolArt, err := r.lookup(toolInst)
	if err != nil {
		return nil, err
	}
	enc, err := r.cfg.reg.Lookup(r.cfg.schema, toolType)
	if err != nil {
		return nil, err
	}
	req := &encap.Request{
		Ctx:      ctx,
		Goal:     rep.Type,
		ToolType: toolType,
		Tool:     toolArt,
		Inputs:   make(map[string][]byte, len(combo)-1),
	}
	for k, inst := range combo {
		if k == "fd" {
			continue
		}
		_, b, err := r.lookup(inst)
		if err != nil {
			return nil, err
		}
		req.Inputs[k] = b
	}
	out, err := enc.Run(req)
	if err != nil {
		return nil, fmt.Errorf("exec: %s via %s: %w", rep.Type, toolType, err)
	}
	return out, nil
}

// recordJob stores artifacts and records history instances for every
// (node, combo) of a completed job, verifying that each recorded ID
// matches the one the planner pre-assigned (the determinism guarantee).
func (r *run) recordJob(j *plannedJob) error {
	if j.memoKeys != nil {
		j.outRefs = make([]map[string]datastore.Ref, len(j.combos))
	}
	for ci, combo := range j.combos {
		out := j.outputs[ci]
		// The input list is identical for every grouped sibling: build it
		// once per combo.
		keys := make([]string, 0, len(combo))
		for k := range combo {
			if k != "fd" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		inputs := make([]history.Input, len(keys))
		for i, k := range keys {
			inputs[i] = history.Input{Key: k, Inst: combo[k]}
		}
		if j.outRefs != nil {
			j.outRefs[ci] = make(map[string]datastore.Ref, len(j.nodes))
		}
		for ni, id := range j.nodes {
			n := r.f.Node(id)
			data, ok := out[n.Type]
			if !ok {
				return fmt.Errorf("exec: tool run produced no %s output (has: %s)", n.Type, outputKeys(out))
			}
			rec := history.Instance{
				Type:   n.Type,
				User:   r.cfg.user,
				Data:   r.cfg.store.Put(data),
				Inputs: inputs,
			}
			if tool, ok := combo["fd"]; ok {
				rec.Tool = tool
			}
			if j.outRefs != nil {
				j.outRefs[ci][n.Type] = rec.Data
			}
			instID, err := r.cfg.db.RecordID(rec)
			if err != nil {
				return fmt.Errorf("exec: recording %s: %w", n.Type, err)
			}
			if want := j.outIDs[ci][ni]; instID != want {
				return fmt.Errorf("exec: nondeterministic recording: got %s, planned %s (history mutated during the run?)", instID, want)
			}
			r.res.Created[id] = append(r.res.Created[id], instID)
		}
	}
	return nil
}

func outputKeys(out encap.Outputs) string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
