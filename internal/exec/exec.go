// Package exec is the task-execution engine of the flow manager: it
// turns a dynamically defined flow (package flow) into tool runs
// (package encap), records every created object in the design history
// (package history) and its artifact in the datastore, and implements
// the framework services of §3.3:
//
//   - automatic task sequencing from the dependencies in the task graph,
//     via a dependency-counting dataflow scheduler (see sched.go): a job
//     dispatches the moment its producers finish, with no barrier
//     between dependency levels;
//   - parallel execution of independent work, as on the "different
//     machines" of Fig. 6 (a worker pool with optional simulated
//     per-task dispatch latency);
//   - fan-out over multi-instance bindings (§4.1: selecting a set of
//     instances causes the task to be run for each combination);
//   - multi-output tasks: sibling nodes sharing one construction are
//     computed by a single tool run (Fig. 5);
//   - composite entities with their implicit compose function and
//     consistency checks;
//   - automatic retracing of stale derivations (consistency
//     maintenance).
//
// Execution is observable: every run returns per-task wall times, worker
// occupancy, the measured critical path and a queue-wait histogram on
// Result.Stats.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/memo"
	"repro/internal/schema"
	"repro/internal/trace"
)

// DefaultMaxCombos bounds the cartesian product a single node's
// multi-instance bindings may fan out into (SetMaxCombos overrides it).
// Generous — real flows fan out into dozens of combos, not tens of
// thousands — but finite, so an adversarial binding fails with a clear
// error instead of exhausting memory.
const DefaultMaxCombos = 100_000

// Engine executes flows against one schema, history database, datastore
// and encapsulation registry. An Engine may be reused across runs but
// runs one flow at a time: a second concurrent run is refused with an
// error, and calling a setter during a run panics (the running flag
// makes the misuse loud instead of silently racy).
type Engine struct {
	schema       *schema.Schema
	db           *history.DB
	store        *datastore.Store
	reg          *encap.Registry
	archives     func(name string, rev int) (string, error)
	user         string
	workers      int
	sched        Scheduler
	maxCombos    int
	taskDelay    time.Duration
	delayFn      func(node flow.NodeID, goal string) time.Duration
	retry        RetryPolicy
	policy       FailurePolicy
	taskTimeout  time.Duration
	nodeTimeouts map[flow.NodeID]time.Duration
	tracer       trace.Sink
	memo         *memo.Cache
	running      atomic.Bool
}

// New creates an engine. workers defaults to 1 (fully serial); use
// SetWorkers to allow parallel branches.
func New(s *schema.Schema, db *history.DB, store *datastore.Store, reg *encap.Registry) *Engine {
	return &Engine{schema: s, db: db, store: store, reg: reg, user: "designer",
		workers: 1, maxCombos: DefaultMaxCombos}
}

// checkIdle panics when a setter is called while a run is in flight:
// the doc contract ("not safe to call during a run") enforced loudly
// instead of left to the race detector.
func (e *Engine) checkIdle(setter string) {
	if e.running.Load() {
		panic("exec: " + setter + " called during a run; engine setters are not safe to call while a flow is executing")
	}
}

// SetUser sets the user recorded on created instances. Not safe to call
// during a run.
func (e *Engine) SetUser(u string) {
	e.checkIdle("SetUser")
	e.user = u
}

// SetWorkers sets the number of parallel workers ("machines"); values
// below 1 are treated as 1. Not safe to call during a run.
func (e *Engine) SetWorkers(n int) {
	e.checkIdle("SetWorkers")
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// SetScheduler selects the scheduling discipline: Dataflow (default) or
// the Barrier baseline. Both record identical instance IDs for the same
// flow; Barrier exists so the level-barrier cost can be measured. Not
// safe to call during a run.
func (e *Engine) SetScheduler(s Scheduler) {
	e.checkIdle("SetScheduler")
	e.sched = s
}

// SetMaxCombos caps the cartesian product of input combinations a single
// node may fan out into (§4.1 multi-instance bindings). Runs exceeding
// the cap fail with a clear error instead of exhausting memory. Values
// below 1 restore DefaultMaxCombos. Not safe to call during a run.
func (e *Engine) SetMaxCombos(n int) {
	e.checkIdle("SetMaxCombos")
	if n < 1 {
		n = DefaultMaxCombos
	}
	e.maxCombos = n
}

// SetTaskDelay adds a simulated dispatch latency to every tool run —
// the stand-in for remote-machine tool startup used when demonstrating
// Fig. 6 (parallel branches win by ~workers×). Not safe to call during
// a run.
func (e *Engine) SetTaskDelay(d time.Duration) {
	e.checkIdle("SetTaskDelay")
	e.taskDelay = d
}

// SetTaskDelayFunc installs a per-task simulated latency keyed by the
// representative node and the goal type, for benchmarks that need
// unbalanced flows (some branches slow, some fast). When set it takes
// precedence over SetTaskDelay; pass nil to remove it. Not safe to call
// during a run.
func (e *Engine) SetTaskDelayFunc(fn func(node flow.NodeID, goal string) time.Duration) {
	e.checkIdle("SetTaskDelayFunc")
	e.delayFn = fn
}

// SetArchiveSource supplies the checkout function for archive-backed
// instances (footnote 5: instances whose artifact lives at a revision of
// a shared archive rather than as a blob). Not safe to call during a
// run.
func (e *Engine) SetArchiveSource(checkout func(name string, rev int) (string, error)) {
	e.checkIdle("SetArchiveSource")
	e.archives = checkout
}

// artifactOf fetches an instance's artifact: from the blob store when a
// Data ref is present, from the archive source when the instance is
// archive-backed, or nil for artifact-less instances (installed tools).
func (e *Engine) artifactOf(inst history.ID) ([]byte, error) {
	in := e.db.Get(inst)
	if in == nil {
		return nil, fmt.Errorf("exec: instance %s disappeared", inst)
	}
	return e.artifactOfInstance(in)
}

func (e *Engine) artifactOfInstance(in *history.Instance) ([]byte, error) {
	if in.Data != "" {
		b, ok := e.store.Get(in.Data)
		if !ok {
			return nil, fmt.Errorf("exec: artifact %s of %s missing from datastore", in.Data, in.ID)
		}
		return b, nil
	}
	if in.Archive != "" {
		if e.archives == nil {
			return nil, fmt.Errorf("exec: instance %s is archive-backed but no archive source is configured", in.ID)
		}
		text, err := e.archives(in.Archive, in.Revision)
		if err != nil {
			return nil, fmt.Errorf("exec: checkout of %s: %w", in.ID, err)
		}
		return []byte(text), nil
	}
	return nil, nil
}

// DB returns the engine's history database.
func (e *Engine) DB() *history.DB { return e.db }

// Store returns the engine's datastore.
func (e *Engine) Store() *datastore.Store { return e.store }

// Result reports one flow run. On error the result is still returned:
// Elapsed is the time spent before failing, Created holds the bound
// instances plus everything committed before the failure, and Stats
// describes the partial schedule — the raw material for failure
// diagnostics and retracing.
type Result struct {
	// Created maps each executed node to the instances that realized it
	// (bound instances pass through unchanged).
	Created map[flow.NodeID][]history.ID
	// TasksRun counts tool executions (compositions included) whose
	// results were committed to history.
	TasksRun int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Skipped lists the nodes of constructions that never ran because a
	// producer failed (ContinueOnError graceful degradation), in plan
	// order. Empty on success and under FailFast.
	Skipped []flow.NodeID
	// Stats describes how the run was scheduled; nil when the run failed
	// before planning finished.
	Stats *Stats
}

// InstancesOf returns the instances created for a node.
func (r *Result) InstancesOf(id flow.NodeID) []history.ID {
	return append([]history.ID(nil), r.Created[id]...)
}

// One returns the single instance created for a node, failing when the
// node fanned out to several or none.
func (r *Result) One(id flow.NodeID) (history.ID, error) {
	insts := r.Created[id]
	if len(insts) != 1 {
		return "", fmt.Errorf("exec: node %d produced %d instances, want 1", id, len(insts))
	}
	return insts[0], nil
}

// RunFlow executes every root of the flow (and hence every needed
// node). On error the returned Result still carries partial state (see
// Result).
func (e *Engine) RunFlow(f *flow.Flow) (*Result, error) {
	return e.RunFlowContext(context.Background(), f)
}

// RunFlowContext is RunFlow under a context: cancelling ctx stops
// dispatching, cuts off well-behaved in-flight tools (Request.Ctx), and
// returns the partial Result with ctx's error joined in.
func (e *Engine) RunFlowContext(ctx context.Context, f *flow.Flow) (*Result, error) {
	return e.run(ctx, f, f.Roots())
}

// RunNode executes the sub-flow rooted at one node — §4.1's "a sub-flow
// may be run at any stage as long as its dependencies are satisfied
// independently of the remainder of the flow".
func (e *Engine) RunNode(f *flow.Flow, id flow.NodeID) (*Result, error) {
	return e.RunNodeContext(context.Background(), f, id)
}

// RunNodeContext is RunNode under a context (see RunFlowContext).
func (e *Engine) RunNodeContext(ctx context.Context, f *flow.Flow, id flow.NodeID) (*Result, error) {
	if f.Node(id) == nil {
		return nil, fmt.Errorf("exec: no node %d", id)
	}
	return e.run(ctx, f, []flow.NodeID{id})
}

func (e *Engine) run(ctx context.Context, f *flow.Flow, targets []flow.NodeID) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{Created: make(map[flow.NodeID][]history.ID)}
	fail := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		return res, err
	}
	if !e.running.CompareAndSwap(false, true) {
		return fail(fmt.Errorf("exec: engine is already running a flow (an Engine runs one flow at a time)"))
	}
	defer e.running.Store(false)
	if err := f.Validate(); err != nil {
		return fail(err)
	}
	for _, t := range targets {
		if ok, why := f.Executable(t); !ok {
			return fail(fmt.Errorf("exec: flow is not executable: %s", why))
		}
	}
	p, err := e.plan(f, targets)
	if err != nil {
		return fail(err)
	}
	for id, insts := range p.bound {
		res.Created[id] = insts
	}
	if err := e.execute(ctx, f, p, res); err != nil {
		return fail(err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// taskSignature groups sibling nodes that share one construction (same
// tool node and same input nodes under the same keys): they are computed
// by a single tool run with multiple outputs.
func taskSignature(f *flow.Flow, id flow.NodeID) string {
	n := f.Node(id)
	keys := n.DepKeys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		c, _ := n.Dep(k)
		parts = append(parts, fmt.Sprintf("%s=%d", k, c))
	}
	return strings.Join(parts, ",")
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// executeCombo performs one tool run (or composition) for one input
// combination. lookup resolves an instance to its (type, artifact) —
// from the in-flight pending set for planned instances not yet
// committed, from the database otherwise.
func (e *Engine) executeCombo(ctx context.Context, f *flow.Flow, j *plannedJob, combo map[string]history.ID,
	lookup func(history.ID) (string, []byte, error)) (encap.Outputs, error) {
	rep := f.Node(j.nodes[0])
	var delay time.Duration
	if e.delayFn != nil {
		delay = e.delayFn(j.nodes[0], rep.Type)
	} else {
		delay = e.taskDelay
	}
	if delay > 0 {
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
	}

	if j.composite {
		parts := make(map[string][]byte, len(combo))
		for k, inst := range combo {
			_, b, err := lookup(inst)
			if err != nil {
				return nil, err
			}
			parts[k] = b
		}
		if check := e.reg.Check(rep.Type); check != nil {
			if err := check(parts); err != nil {
				return nil, fmt.Errorf("exec: composite %s consistency check failed: %w", rep.Type, err)
			}
		}
		return encap.Outputs{rep.Type: encap.ComposeParts(parts)}, nil
	}

	toolInst, ok := combo["fd"]
	if !ok {
		return nil, fmt.Errorf("exec: task %s has no tool instance", rep.Type)
	}
	toolType, toolArt, err := lookup(toolInst)
	if err != nil {
		return nil, err
	}
	enc, err := e.reg.Lookup(e.schema, toolType)
	if err != nil {
		return nil, err
	}
	req := &encap.Request{
		Ctx:      ctx,
		Goal:     rep.Type,
		ToolType: toolType,
		Tool:     toolArt,
		Inputs:   make(map[string][]byte, len(combo)-1),
	}
	for k, inst := range combo {
		if k == "fd" {
			continue
		}
		_, b, err := lookup(inst)
		if err != nil {
			return nil, err
		}
		req.Inputs[k] = b
	}
	out, err := enc.Run(req)
	if err != nil {
		return nil, fmt.Errorf("exec: %s via %s: %w", rep.Type, toolType, err)
	}
	return out, nil
}

// recordJob stores artifacts and records history instances for every
// (node, combo) of a completed job, verifying that each recorded ID
// matches the one the planner pre-assigned (the determinism guarantee).
func (e *Engine) recordJob(f *flow.Flow, j *plannedJob, res *Result) error {
	for ci, combo := range j.combos {
		out := j.outputs[ci]
		for ni, id := range j.nodes {
			n := f.Node(id)
			data, ok := out[n.Type]
			if !ok {
				return fmt.Errorf("exec: tool run produced no %s output (has: %s)", n.Type, outputKeys(out))
			}
			rec := history.Instance{
				Type: n.Type,
				User: e.user,
				Data: e.store.Put(data),
			}
			if tool, ok := combo["fd"]; ok {
				rec.Tool = tool
			}
			var keys []string
			for k := range combo {
				if k != "fd" {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				rec.Inputs = append(rec.Inputs, history.Input{Key: k, Inst: combo[k]})
			}
			inst, err := e.db.Record(rec)
			if err != nil {
				return fmt.Errorf("exec: recording %s: %w", n.Type, err)
			}
			if want := j.outIDs[ci][ni]; inst.ID != want {
				return fmt.Errorf("exec: nondeterministic recording: got %s, planned %s (history mutated during the run?)", inst.ID, want)
			}
			res.Created[id] = append(res.Created[id], inst.ID)
		}
	}
	return nil
}

func outputKeys(out encap.Outputs) string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
