// Package exec is the task-execution engine of the flow manager: it
// turns a dynamically defined flow (package flow) into tool runs
// (package encap), records every created object in the design history
// (package history) and its artifact in the datastore, and implements
// the framework services of §3.3:
//
//   - automatic task sequencing from the dependencies in the task graph;
//   - parallel execution of independent work, as on the "different
//     machines" of Fig. 6 (a worker pool with optional simulated
//     per-task dispatch latency);
//   - fan-out over multi-instance bindings (§4.1: selecting a set of
//     instances causes the task to be run for each combination);
//   - multi-output tasks: sibling nodes sharing one construction are
//     computed by a single tool run (Fig. 5);
//   - composite entities with their implicit compose function and
//     consistency checks;
//   - automatic retracing of stale derivations (consistency
//     maintenance).
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/schema"
)

// Engine executes flows against one schema, history database, datastore
// and encapsulation registry.
type Engine struct {
	schema    *schema.Schema
	db        *history.DB
	store     *datastore.Store
	reg       *encap.Registry
	archives  func(name string, rev int) (string, error)
	user      string
	workers   int
	taskDelay time.Duration
}

// New creates an engine. workers defaults to 1 (fully serial); use
// SetWorkers to allow parallel branches.
func New(s *schema.Schema, db *history.DB, store *datastore.Store, reg *encap.Registry) *Engine {
	return &Engine{schema: s, db: db, store: store, reg: reg, user: "designer", workers: 1}
}

// SetUser sets the user recorded on created instances.
func (e *Engine) SetUser(u string) { e.user = u }

// SetWorkers sets the number of parallel workers ("machines"); values
// below 1 are treated as 1.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// SetTaskDelay adds a simulated dispatch latency to every tool run —
// the stand-in for remote-machine tool startup used when demonstrating
// Fig. 6 (parallel branches win by ~workers×).
func (e *Engine) SetTaskDelay(d time.Duration) { e.taskDelay = d }

// SetArchiveSource supplies the checkout function for archive-backed
// instances (footnote 5: instances whose artifact lives at a revision of
// a shared archive rather than as a blob).
func (e *Engine) SetArchiveSource(checkout func(name string, rev int) (string, error)) {
	e.archives = checkout
}

// artifactOf fetches an instance's artifact: from the blob store when a
// Data ref is present, from the archive source when the instance is
// archive-backed, or nil for artifact-less instances (installed tools).
func (e *Engine) artifactOf(inst history.ID) ([]byte, error) {
	in := e.db.Get(inst)
	if in == nil {
		return nil, fmt.Errorf("exec: instance %s disappeared", inst)
	}
	if in.Data != "" {
		b, ok := e.store.Get(in.Data)
		if !ok {
			return nil, fmt.Errorf("exec: artifact %s of %s missing from datastore", in.Data, inst)
		}
		return b, nil
	}
	if in.Archive != "" {
		if e.archives == nil {
			return nil, fmt.Errorf("exec: instance %s is archive-backed but no archive source is configured", inst)
		}
		text, err := e.archives(in.Archive, in.Revision)
		if err != nil {
			return nil, fmt.Errorf("exec: checkout of %s: %w", inst, err)
		}
		return []byte(text), nil
	}
	return nil, nil
}

// DB returns the engine's history database.
func (e *Engine) DB() *history.DB { return e.db }

// Store returns the engine's datastore.
func (e *Engine) Store() *datastore.Store { return e.store }

// Result reports one flow run.
type Result struct {
	// Created maps each executed node to the instances that realized it
	// (bound instances pass through unchanged).
	Created map[flow.NodeID][]history.ID
	// TasksRun counts tool executions (compositions included).
	TasksRun int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// InstancesOf returns the instances created for a node.
func (r *Result) InstancesOf(id flow.NodeID) []history.ID {
	return append([]history.ID(nil), r.Created[id]...)
}

// One returns the single instance created for a node, failing when the
// node fanned out to several or none.
func (r *Result) One(id flow.NodeID) (history.ID, error) {
	insts := r.Created[id]
	if len(insts) != 1 {
		return "", fmt.Errorf("exec: node %d produced %d instances, want 1", id, len(insts))
	}
	return insts[0], nil
}

// RunFlow executes every root of the flow (and hence every needed
// node).
func (e *Engine) RunFlow(f *flow.Flow) (*Result, error) {
	return e.run(f, f.Roots())
}

// RunNode executes the sub-flow rooted at one node — §4.1's "a sub-flow
// may be run at any stage as long as its dependencies are satisfied
// independently of the remainder of the flow".
func (e *Engine) RunNode(f *flow.Flow, id flow.NodeID) (*Result, error) {
	if f.Node(id) == nil {
		return nil, fmt.Errorf("exec: no node %d", id)
	}
	return e.run(f, []flow.NodeID{id})
}

// reachable returns the nodes needed to compute the targets.
func reachable(f *flow.Flow, targets []flow.NodeID) map[flow.NodeID]bool {
	out := make(map[flow.NodeID]bool)
	var visit func(id flow.NodeID)
	visit = func(id flow.NodeID) {
		if out[id] {
			return
		}
		out[id] = true
		n := f.Node(id)
		if n.IsBound() {
			return // bound nodes stand in for their subtree
		}
		for _, k := range n.DepKeys() {
			c, _ := n.Dep(k)
			visit(c)
		}
	}
	for _, t := range targets {
		visit(t)
	}
	return out
}

// taskSignature groups sibling nodes that share one construction (same
// tool node and same input nodes under the same keys): they are computed
// by a single tool run with multiple outputs.
func taskSignature(f *flow.Flow, id flow.NodeID) string {
	n := f.Node(id)
	keys := n.DepKeys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		c, _ := n.Dep(k)
		parts = append(parts, fmt.Sprintf("%s=%d", k, c))
	}
	return strings.Join(parts, ",")
}

// job is one group of nodes computed by a shared sequence of tool runs.
type job struct {
	nodes     []flow.NodeID // group members, representative first
	composite bool
	// combos are the input combinations to execute, each a concrete
	// assignment of instances to dependency keys (plus "fd").
	combos []map[string]history.ID
	// outputs[i] collects, per combo, the produced artifacts.
	outputs []encap.Outputs
	err     error
}

func (e *Engine) run(f *flow.Flow, targets []flow.NodeID) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for _, t := range targets {
		if ok, why := f.Executable(t); !ok {
			return nil, fmt.Errorf("exec: flow is not executable: %s", why)
		}
	}
	needed := reachable(f, targets)
	levels, err := f.Levels()
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res := &Result{Created: make(map[flow.NodeID][]history.ID)}

	for _, level := range levels {
		var jobs []*job
		grouped := make(map[string]*job)
		for _, id := range level {
			if !needed[id] {
				continue
			}
			n := f.Node(id)
			if n.IsBound() {
				res.Created[id] = n.Bound()
				continue
			}
			t := e.schema.Type(n.Type)
			if t.IsPrimitiveSource() {
				return nil, fmt.Errorf("exec: node %d (%s) is an unbound primitive source", id, n.Type)
			}
			sig := taskSignature(f, id)
			if j, ok := grouped[sig]; ok && !t.Composite {
				j.nodes = append(j.nodes, id)
				continue
			}
			j := &job{nodes: []flow.NodeID{id}, composite: t.Composite}
			combos, err := e.combosFor(f, id, res)
			if err != nil {
				return nil, err
			}
			j.combos = combos
			if !t.Composite {
				grouped[sig] = j
			}
			jobs = append(jobs, j)
		}

		// Execute the level's jobs in parallel, then record results
		// sequentially in job order so instance IDs are deterministic.
		e.executeJobs(f, jobs)
		for _, j := range jobs {
			if j.err != nil {
				return nil, j.err
			}
			if err := e.recordJob(f, j, res); err != nil {
				return nil, err
			}
			res.TasksRun += len(j.combos)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// combosFor enumerates the input combinations of a node: the cartesian
// product of its dependencies' instance lists, in deterministic order.
func (e *Engine) combosFor(f *flow.Flow, id flow.NodeID, res *Result) ([]map[string]history.ID, error) {
	n := f.Node(id)
	keys := n.DepKeys()
	combos := []map[string]history.ID{{}}
	for _, k := range keys {
		c, _ := n.Dep(k)
		insts := res.Created[c]
		if len(insts) == 0 {
			return nil, fmt.Errorf("exec: node %d dependency %q (node %d) produced no instances", id, k, c)
		}
		var next []map[string]history.ID
		for _, combo := range combos {
			for _, inst := range insts {
				cp := make(map[string]history.ID, len(combo)+1)
				for kk, vv := range combo {
					cp[kk] = vv
				}
				cp[k] = inst
				next = append(next, cp)
			}
		}
		combos = next
	}
	return combos, nil
}

// executeJobs runs all (job, combo) executions of one level through the
// worker pool, storing outputs on the jobs.
func (e *Engine) executeJobs(f *flow.Flow, jobs []*job) {
	type unit struct {
		j  *job
		ci int
	}
	var units []unit
	for _, j := range jobs {
		j.outputs = make([]encap.Outputs, len(j.combos))
		for ci := range j.combos {
			units = append(units, unit{j, ci})
		}
	}
	if len(units) == 0 {
		return
	}
	workers := e.workers
	if workers > len(units) {
		workers = len(units)
	}
	ch := make(chan unit)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards job.err
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ch {
				out, err := e.executeCombo(f, u.j, u.j.combos[u.ci])
				if err != nil {
					mu.Lock()
					if u.j.err == nil {
						u.j.err = err
					}
					mu.Unlock()
					continue
				}
				u.j.outputs[u.ci] = out
			}
		}()
	}
	for _, u := range units {
		ch <- u
	}
	close(ch)
	wg.Wait()
}

// executeCombo performs one tool run (or composition) for one input
// combination.
func (e *Engine) executeCombo(f *flow.Flow, j *job, combo map[string]history.ID) (encap.Outputs, error) {
	if e.taskDelay > 0 {
		time.Sleep(e.taskDelay)
	}
	rep := f.Node(j.nodes[0])
	artifact := e.artifactOf

	if j.composite {
		parts := make(map[string][]byte, len(combo))
		for k, inst := range combo {
			b, err := artifact(inst)
			if err != nil {
				return nil, err
			}
			parts[k] = b
		}
		if check := e.reg.Check(rep.Type); check != nil {
			if err := check(parts); err != nil {
				return nil, fmt.Errorf("exec: composite %s consistency check failed: %w", rep.Type, err)
			}
		}
		return encap.Outputs{rep.Type: encap.ComposeParts(parts)}, nil
	}

	toolInst, ok := combo["fd"]
	if !ok {
		return nil, fmt.Errorf("exec: task %s has no tool instance", rep.Type)
	}
	toolIn := e.db.Get(toolInst)
	toolArt, err := artifact(toolInst)
	if err != nil {
		return nil, err
	}
	enc, err := e.reg.Lookup(e.schema, toolIn.Type)
	if err != nil {
		return nil, err
	}
	req := &encap.Request{
		Goal:     rep.Type,
		ToolType: toolIn.Type,
		Tool:     toolArt,
		Inputs:   make(map[string][]byte, len(combo)-1),
	}
	for k, inst := range combo {
		if k == "fd" {
			continue
		}
		b, err := artifact(inst)
		if err != nil {
			return nil, err
		}
		req.Inputs[k] = b
	}
	out, err := enc.Run(req)
	if err != nil {
		return nil, fmt.Errorf("exec: %s via %s: %w", rep.Type, toolIn.Type, err)
	}
	return out, nil
}

// recordJob stores artifacts and records history instances for every
// (node, combo) of a completed job.
func (e *Engine) recordJob(f *flow.Flow, j *job, res *Result) error {
	for ci, combo := range j.combos {
		out := j.outputs[ci]
		for _, id := range j.nodes {
			n := f.Node(id)
			data, ok := out[n.Type]
			if !ok {
				return fmt.Errorf("exec: tool run produced no %s output (has: %s)", n.Type, outputKeys(out))
			}
			rec := history.Instance{
				Type: n.Type,
				User: e.user,
				Data: e.store.Put(data),
			}
			if tool, ok := combo["fd"]; ok {
				rec.Tool = tool
			}
			var keys []string
			for k := range combo {
				if k != "fd" {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				rec.Inputs = append(rec.Inputs, history.Input{Key: k, Inst: combo[k]})
			}
			inst, err := e.db.Record(rec)
			if err != nil {
				return fmt.Errorf("exec: recording %s: %w", n.Type, err)
			}
			res.Created[id] = append(res.Created[id], inst.ID)
		}
	}
	return nil
}

func outputKeys(out encap.Outputs) string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
