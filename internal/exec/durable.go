package exec

import (
	"fmt"

	"repro/internal/encap"
	"repro/internal/memo"
	"repro/internal/trace"
)

// This file is the resume half of the durability layer: a run handed a
// recovered WAL prefix (RunOptions.Resume) restores every fully
// committed job from the log instead of executing it. Restored jobs
// are marked done with their logged outputs before the scheduler's
// ready scan, so only the remaining units dispatch; one advance() pass
// then commits the restored prefix through the *normal* in-order
// committer — recordJob re-records the instances (verifying the logged
// IDs against the replanned pre-assignment, the same determinism check
// live runs get), the datastore re-absorbs the artifact bytes
// (content-addressed Put deduplicates), and memoPublish re-feeds the
// result cache. Replay is therefore not a second commit path: it is
// the ordinary one, fed from the log.
//
// The correctness of resuming-by-replanning rests on the determinism
// contract: a session bootstraps identically every time, so a fresh
// database yields the same base sequence number and the planner
// pre-assigns exactly the IDs the interrupted run logged. Every
// restored unit is verified against that pre-assignment; any mismatch
// aborts the resume with an error rather than committing a log that
// belongs to a different flow.

// applyResume restores the recovered prefix onto a freshly built plan.
// Called by execute after scheduler state is initialized and before
// the initial ready scan.
func (r *run) applyResume(p *plan, tr *runTracer) error {
	res := r.cfg.resume
	if len(res.Events) == 0 {
		return nil // nothing durable: plain fresh run
	}
	// The logged plan shape must match the replanned one.
	for _, ev := range res.Events {
		if ev.Kind == trace.KindPlanBuilt && (ev.Jobs != len(p.jobs) || ev.Units != p.units) {
			return fmt.Errorf("exec: recovered log planned %d jobs / %d units, replanning produced %d / %d: log does not match the flow",
				ev.Jobs, ev.Units, len(p.jobs), p.units)
		}
	}

	// Restore the longest contiguous prefix of fully committed jobs.
	unit := 0
	var restored []*plannedJob
	for _, j := range p.jobs {
		complete := len(j.combos) > 0
		for ci := range j.combos {
			if res.Commits[unit+ci] == nil {
				complete = false
				break
			}
		}
		if !complete {
			break
		}
		for ci := range j.combos {
			c := res.Commits[unit+ci]
			if len(c.Insts) != len(j.outIDs[ci]) {
				return fmt.Errorf("exec: recovered unit %d committed %d instances, replanned %d",
					unit+ci, len(c.Insts), len(j.outIDs[ci]))
			}
			for ni, id := range j.outIDs[ci] {
				if string(id) != c.Insts[ni] {
					return fmt.Errorf("exec: recovered unit %d committed %s where the replan assigns %s: log does not match the flow",
						unit+ci, c.Insts[ni], id)
				}
			}
			out := make(encap.Outputs, len(c.Outputs))
			for typ, b := range c.Outputs {
				out[typ] = b
			}
			for _, nid := range j.nodes {
				typ := r.f.Node(nid).Type
				if _, ok := out[typ]; !ok {
					return fmt.Errorf("exec: recovered unit %d lacks a %s output", unit+ci, typ)
				}
			}
			j.outputs[ci] = out
			if j.memoKeys != nil && c.MemoKey != "" {
				j.memoKeys[ci] = memo.Key(c.MemoKey)
			}
		}
		j.done = true
		j.resumed = true
		j.remaining = 0
		tr.markResumed(j)
		restored = append(restored, j)
		unit += len(j.combos)
	}

	// Publish restored artifacts to the pending set and unblock
	// dependents — what complete() would have done had the units run.
	r.st.mu.Lock()
	for _, j := range restored {
		for ci := range j.combos {
			for ni, nid := range j.nodes {
				typ := r.f.Node(nid).Type
				r.st.arts[j.outIDs[ci][ni]] = pendingArtifact{typ: typ, data: j.outputs[ci][typ]}
			}
		}
	}
	r.st.mu.Unlock()
	for _, j := range restored {
		for _, di := range j.dependents {
			p.jobs[di].pending--
		}
	}
	return nil
}
