package exec

// FailurePolicy selects what a run does when a unit exhausts its
// retries.
type FailurePolicy int

const (
	// FailFast (the default) stops dispatching on the first failed unit:
	// in-flight units drain, the contiguous plan-order prefix of
	// completed jobs stays committed, and every failure is returned
	// joined.
	FailFast FailurePolicy = iota
	// ContinueOnError degrades gracefully: every job whose producers all
	// succeeded is still dispatched and committed, only the dependents
	// of failed jobs are skipped. The pre-assigned instance IDs of
	// failed and skipped constructions are retired (history.ReserveSeq),
	// so the committed survivors carry exactly the IDs the planner
	// assigned. The run still returns an error: the join of every unit
	// failure plus one entry per skipped construction naming its
	// root-cause node.
	ContinueOnError
)

func (p FailurePolicy) String() string {
	if p == ContinueOnError {
		return "continue-on-error"
	}
	return "fail-fast"
}

// SetFailurePolicy selects the engine's failure policy. Applies to
// subsequently admitted runs.
func (e *Engine) SetFailurePolicy(p FailurePolicy) {
	e.set(func(c *runConfig) { c.policy = p })
}
