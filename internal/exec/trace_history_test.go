package exec

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/trace"
)

// TestTraceHistoryCommittedBijection is the trace↔history consistency
// property: over random flows (the random_test.go generator), with and
// without fault injection, every instance the run records in the
// design history corresponds to exactly one UnitCommitted event and
// vice versa — the trace never invents a commit and never misses one.
// Skipped nodes (ContinueOnError) must likewise match Result.Skipped.
func TestTraceHistoryCommittedBijection(t *testing.T) {
	goals := []string{
		"Performance", "PerformancePlot", "Verification",
		"ExtractedNetlist", "ExtractionStatistics", "PlacedLayout",
		"EditedNetlist", "EditedLayout", "OptimizedModels",
	}
	for seed := int64(0); seed < 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t)
		r.engine.SetWorkers(1 + rng.Intn(4))
		// Rotate failure regimes: clean, degraded (ContinueOnError with
		// permanently poisoned sites), and fail-fast with poisoned sites.
		regime := seed % 3
		if regime != 0 {
			inj := faults.New(seed, faults.Config{PermanentRate: 0.3})
			inj.Instrument(r.engine.reg)
			if regime == 1 {
				r.engine.SetFailurePolicy(ContinueOnError)
			}
		}
		buf := trace.NewBuffer()
		r.engine.SetTracer(buf)

		goal := goals[rng.Intn(len(goals))]
		f := flow.New(r.s, r.db)
		root := f.MustAdd(goal)
		if err := buildRandom(t, r, f, root, rng, 0, "", goal); err != nil {
			t.Fatalf("seed %d goal %s: build: %v", seed, goal, err)
		}
		pre := r.db.Len()
		res, err := r.engine.RunFlow(f)
		if regime == 0 && err != nil {
			t.Fatalf("seed %d goal %s: clean run: %v", seed, goal, err)
		}

		committed := make(map[history.ID]int)
		skippedNodes := make(map[flow.NodeID]bool)
		for _, ev := range buf.Events() {
			switch ev.Kind {
			case trace.KindUnitCommitted:
				for _, s := range ev.Insts {
					committed[history.ID(s)]++
				}
			case trace.KindUnitSkipped:
				for _, n := range ev.Nodes {
					skippedNodes[flow.NodeID(n)] = true
				}
			}
		}

		recorded := r.db.All()[pre:]
		for _, in := range recorded {
			if committed[in.ID] != 1 {
				t.Errorf("seed %d: instance %s recorded in history but has %d UnitCommitted events, want 1",
					seed, in.ID, committed[in.ID])
			}
			delete(committed, in.ID)
		}
		for id, n := range committed {
			t.Errorf("seed %d: UnitCommitted ×%d for %s, which history never recorded", seed, n, id)
		}

		resSkipped := make(map[flow.NodeID]bool)
		for _, n := range res.Skipped {
			resSkipped[n] = true
		}
		if len(skippedNodes) != len(resSkipped) {
			t.Errorf("seed %d: UnitSkipped nodes %v != Result.Skipped %v", seed, skippedNodes, res.Skipped)
		}
		for n := range resSkipped {
			if !skippedNodes[n] {
				t.Errorf("seed %d: node %d in Result.Skipped has no UnitSkipped event", seed, n)
			}
		}
	}
}
