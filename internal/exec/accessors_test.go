package exec

import (
	"strings"
	"testing"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
)

func TestEngineAccessors(t *testing.T) {
	r := newRig(t)
	if r.engine.DB() != r.db || r.engine.Store() != r.store {
		t.Error("accessors return wrong components")
	}
	r.engine.SetUser("alice")
	f := flow.New(r.s, r.db)
	n := f.MustAdd("EditedNetlist")
	if err := f.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(n).Dep("fd")
	if err := f.Bind(tn, r.ids["netEdGen"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.One(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.db.Get(id).User; got != "alice" {
		t.Errorf("recorded user = %q", got)
	}
}

func TestArchiveBackedArtifacts(t *testing.T) {
	r := newRig(t)
	// Without an archive source, archive-backed instances fail clearly.
	arch := datastore.NewArchives()
	rev := arch.Open("n.cct").Checkin("netlist fulladder\nin a b cin\nout sum cout\n" +
		"gate g1 xor2 a b -> t\ngate g2 xor2 t cin -> sum\n" +
		"gate a1 and2 a b -> p\ngate a2 and2 t cin -> q\ngate o1 or2 p q -> cout\n")
	inst := r.db.MustRecord(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool: r.ids["netEdGen"], Archive: "n.cct", Revision: rev})

	buildSim := func() (*flow.Flow, flow.NodeID) {
		f := flow.New(r.s, r.db)
		perf := f.MustAdd("Performance")
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		must(f.ExpandDown(perf, false))
		simN, _ := f.Node(perf).Dep("fd")
		cctN, _ := f.Node(perf).Dep("Circuit")
		stimN, _ := f.Node(perf).Dep("Stimuli")
		must(f.ExpandDown(cctN, false))
		dmN, _ := f.Node(cctN).Dep("DeviceModels")
		netN, _ := f.Node(cctN).Dep("Netlist")
		must(f.ExpandDown(dmN, false))
		dmToolN, _ := f.Node(dmN).Dep("fd")
		must(f.Bind(netN, inst.ID))
		must(f.Bind(simN, r.ids["sim"]))
		must(f.Bind(stimN, r.ids["stim"]))
		must(f.Bind(dmToolN, r.ids["dmEd"]))
		return f, perf
	}

	f, _ := buildSim()
	_, err := r.engine.RunFlow(f)
	if err == nil || !strings.Contains(err.Error(), "no archive source") {
		t.Fatalf("err = %v, want missing-archive-source", err)
	}

	// With the source configured, the flow runs off the archive.
	r.engine.SetArchiveSource(arch.Checkout)
	f2, perf := buildSim()
	res, err := r.engine.RunFlow(f2)
	if err != nil {
		t.Fatalf("RunFlow with archive source: %v", err)
	}
	if _, err := res.One(perf); err != nil {
		t.Fatal(err)
	}

	// A dangling revision fails at checkout time.
	bad := r.db.MustRecord(history.Instance{Type: "EditedNetlist", User: "rig",
		Tool: r.ids["netEdGen"], Archive: "ghost.cct", Revision: 3})
	f3, _ := buildSim()
	netN := findNodeByBinding(f3, inst.ID)
	if err := f3.Bind(netN, bad.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.RunFlow(f3); err == nil || !strings.Contains(err.Error(), "checkout") {
		t.Errorf("dangling archive err = %v", err)
	}
}

func findNodeByBinding(f *flow.Flow, inst history.ID) flow.NodeID {
	for _, id := range f.NodeIDs() {
		for _, b := range f.Node(id).Bound() {
			if b == inst {
				return id
			}
		}
	}
	return 0
}

func TestOutputKeysInError(t *testing.T) {
	// An encapsulation producing the wrong output type yields an error
	// listing what it did produce.
	r := newRig(t)
	r.engine.reg.Register("NetlistEditor", encap.Func(func(req *encap.Request) (encap.Outputs, error) {
		return encap.Outputs{"SomethingElse": []byte("x"), "Another": []byte("y")}, nil
	}))
	f := flow.New(r.s, r.db)
	n := f.MustAdd("EditedNetlist")
	if err := f.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(n).Dep("fd")
	if err := f.Bind(tn, r.ids["netEdGen"]); err != nil {
		t.Fatal(err)
	}
	_, err := r.engine.RunFlow(f)
	if err == nil || !strings.Contains(err.Error(), "Another, SomethingElse") {
		t.Errorf("err = %v, want produced-output listing", err)
	}
}
