package exec

import (
	"testing"

	"repro/internal/history"
)

// TestCartesianFanOut verifies full cartesian semantics: multiple
// instances on several dependencies multiply (§4.1 generalized), each
// combination is recorded with its own derivation, and the combinations
// are exactly the cartesian product — no duplicates, none missing.
func TestCartesianFanOut(t *testing.T) {
	r := newRig(t)
	// A second simulator and a third stimuli instance.
	sim2 := r.db.MustRecord(history.Instance{Type: "InstalledSimulator", Name: "spice3", User: "rig"})
	stim3 := r.db.MustRecord(history.Instance{Type: "Stimuli", Name: "third", User: "rig",
		Data: r.store.Put([]byte("stimuli third\ninterval 10000000\ninputs a b cin\nvector 010\n"))})

	f, perf := r.perfFlow(t)
	simN, _ := f.Node(perf).Dep("fd")
	stimN, _ := f.Node(perf).Dep("Stimuli")
	if err := f.Bind(simN, r.ids["sim"], sim2.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(stimN, r.ids["stim"], r.ids["stim2"], stim3.ID); err != nil {
		t.Fatal(err)
	}
	r.engine.SetWorkers(4)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	perfs := res.InstancesOf(perf)
	if len(perfs) != 6 { // 2 simulators x 3 stimuli
		t.Fatalf("performances = %d, want 6", len(perfs))
	}
	// 3 upstream tasks (netlist, models, circuit) + 6 simulations.
	if res.TasksRun != 9 {
		t.Errorf("TasksRun = %d, want 9", res.TasksRun)
	}
	seen := map[[2]history.ID]bool{}
	for _, pid := range perfs {
		in := r.db.Get(pid)
		st, _ := in.InputFor("Stimuli")
		key := [2]history.ID{in.Tool, st}
		if seen[key] {
			t.Errorf("duplicate combination %v", key)
		}
		seen[key] = true
	}
	for _, simID := range []history.ID{r.ids["sim"], sim2.ID} {
		for _, stID := range []history.ID{r.ids["stim"], r.ids["stim2"], stim3.ID} {
			if !seen[[2]history.ID{simID, stID}] {
				t.Errorf("combination (%s, %s) missing", simID, stID)
			}
		}
	}
}

// TestFanOutPropagatesDownstream checks that a fanned-out intermediate
// fans the parent out too: two circuits (from two model libraries) give
// two performances.
func TestFanOutPropagatesDownstream(t *testing.T) {
	r := newRig(t)
	f, perf := r.perfFlow(t)
	cctN, _ := f.Node(perf).Dep("Circuit")
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	dmToolN, _ := f.Node(dmN).Dep("fd")
	// Two model editors: default and fast libraries.
	if err := f.Bind(dmToolN, r.ids["dmEd"], r.ids["dmEdFast"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.InstancesOf(dmN)); got != 2 {
		t.Fatalf("device model instances = %d", got)
	}
	if got := len(res.InstancesOf(cctN)); got != 2 {
		t.Fatalf("circuits = %d", got)
	}
	perfs := res.InstancesOf(perf)
	if len(perfs) != 2 {
		t.Fatalf("performances = %d", len(perfs))
	}
	// The two performances differ (different model libraries change the
	// timing numbers).
	a, _ := r.store.Get(r.db.Get(perfs[0]).Data)
	b, _ := r.store.Get(r.db.Get(perfs[1]).Data)
	if string(a) == string(b) {
		t.Error("different model libraries should yield different performance artifacts")
	}
}
