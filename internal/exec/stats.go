package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats makes one run's schedule observable (the flow automation of
// §3.3, instrumented): where the time went per task type, how busy the
// workers were, the dependency-imposed lower bound on the makespan, and
// how long ready work sat queued. flowbench prints it next to every
// Fig. 6 measurement.
type Stats struct {
	// Scheduler is the discipline that produced this schedule
	// ("dataflow" or "barrier").
	Scheduler string
	// Workers is the pool size actually used (clamped to the unit count).
	Workers int
	// Jobs counts schedulable constructions; Units counts (job, combo)
	// executions planned; UnitsRun counts those actually executed (fewer
	// than Units when fail-fast stopped the run).
	Jobs, Units, UnitsRun int
	// Elapsed spans the scheduling loop; Busy sums worker execution
	// time; Occupancy is Busy / (Elapsed × Workers).
	Elapsed   time.Duration
	Busy      time.Duration
	Occupancy float64
	// CriticalPath is the longest dependency chain of measured job
	// durations — no schedule on any worker count beats it.
	CriticalPath     time.Duration
	CriticalPathJobs int
	// Fault-tolerance counters. Retries counts extra attempts beyond the
	// first; Timeouts counts attempts cut off by the per-task deadline;
	// UnitsFailed counts units whose final attempt failed; JobsSkipped
	// counts constructions never dispatched because a producer failed
	// (ContinueOnError).
	Retries, Timeouts, UnitsFailed, JobsSkipped int
	// CacheHits counts units satisfied from the derivation-keyed result
	// cache (Engine.SetMemo) without running a tool.
	CacheHits int
	// PerTask aggregates wall time by the job's representative type.
	PerTask map[string]TaskStat
	// QueueWait histograms the delay between a unit becoming ready and a
	// worker picking it up.
	QueueWait WaitHistogram

	started time.Time
}

// TaskStat aggregates the executions of one task type.
type TaskStat struct {
	Runs  int
	Total time.Duration
	Max   time.Duration
}

// WaitHistogram counts ready→dispatch waits in fixed buckets; the last
// bucket is unbounded.
type WaitHistogram struct {
	Bounds []time.Duration
	Counts []int
}

var defaultWaitBounds = []time.Duration{
	100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	100 * time.Millisecond, time.Second,
}

func (h *WaitHistogram) observe(d time.Duration) {
	for i, b := range h.Bounds {
		if d <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

func (h WaitHistogram) String() string {
	parts := make([]string, 0, len(h.Counts))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if i < len(h.Bounds) {
			parts = append(parts, fmt.Sprintf("≤%v:%d", h.Bounds[i], c))
		} else {
			parts = append(parts, fmt.Sprintf(">%v:%d", h.Bounds[len(h.Bounds)-1], c))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

func newStats(sched Scheduler, p *plan) *Stats {
	return &Stats{
		Scheduler: sched.String(),
		Jobs:      len(p.jobs),
		Units:     p.units,
		PerTask:   make(map[string]TaskStat),
		QueueWait: WaitHistogram{
			Bounds: defaultWaitBounds,
			Counts: make([]int, len(defaultWaitBounds)+1),
		},
		started: time.Now(),
	}
}

func (s *Stats) observeUnit(j *plannedJob, wait, dur time.Duration) {
	s.UnitsRun++
	s.Busy += dur
	ts := s.PerTask[j.repType]
	ts.Runs++
	ts.Total += dur
	if dur > ts.Max {
		ts.Max = dur
	}
	s.PerTask[j.repType] = ts
	s.QueueWait.observe(wait)
}

// finish closes the measurement: occupancy from the scheduling span and
// the critical path from measured job durations (a DP over the job
// graph, valid because plan order is topological).
func (s *Stats) finish(p *plan) {
	s.Elapsed = time.Since(s.started)
	if s.Workers > 0 && s.Elapsed > 0 {
		s.Occupancy = float64(s.Busy) / (float64(s.Elapsed) * float64(s.Workers))
	}
	cp := make([]time.Duration, len(p.jobs))
	cpJobs := make([]int, len(p.jobs))
	for i, j := range p.jobs {
		var best time.Duration
		var bestJobs int
		for _, d := range j.deps {
			if cp[d] > best || (cp[d] == best && cpJobs[d] > bestJobs) {
				best, bestJobs = cp[d], cpJobs[d]
			}
		}
		cp[i] = best + j.dur
		cpJobs[i] = bestJobs + 1
		if cp[i] > s.CriticalPath {
			s.CriticalPath = cp[i]
			s.CriticalPathJobs = cpJobs[i]
		}
	}
}

// Summary renders the stats as a short multi-line report for CLIs and
// benches.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler=%s workers=%d jobs=%d units=%d/%d\n",
		s.Scheduler, s.Workers, s.Jobs, s.UnitsRun, s.Units)
	fmt.Fprintf(&b, "elapsed=%v busy=%v occupancy=%.0f%% critical-path=%v (%d jobs)\n",
		s.Elapsed.Round(time.Microsecond), s.Busy.Round(time.Microsecond),
		s.Occupancy*100, s.CriticalPath.Round(time.Microsecond), s.CriticalPathJobs)
	if s.CacheHits != 0 {
		fmt.Fprintf(&b, "memo: cache-hits=%d/%d\n", s.CacheHits, s.Units)
	}
	if s.Retries != 0 || s.Timeouts != 0 || s.UnitsFailed != 0 || s.JobsSkipped != 0 {
		fmt.Fprintf(&b, "faults: retries=%d timeouts=%d failed=%d skipped=%d\n",
			s.Retries, s.Timeouts, s.UnitsFailed, s.JobsSkipped)
	}
	fmt.Fprintf(&b, "queue-wait: %s", s.QueueWait)
	types := make([]string, 0, len(s.PerTask))
	for t := range s.PerTask {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		ts := s.PerTask[t]
		fmt.Fprintf(&b, "\n  %-20s runs=%-3d total=%-10v max=%v",
			t, ts.Runs, ts.Total.Round(time.Microsecond), ts.Max.Round(time.Microsecond))
	}
	return b.String()
}
