package exec

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/schema"
)

// failingEncap fails after a configurable number of successful runs.
type failingEncap struct {
	failAfter int
	calls     int
}

var errInjected = errors.New("injected tool failure")

func (f *failingEncap) Run(r *encap.Request) (encap.Outputs, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, errInjected
	}
	return encap.Outputs{r.Goal: []byte("ok " + r.Goal)}, nil
}

func TestToolFailurePropagates(t *testing.T) {
	r := newRig(t)
	// Replace the netlist editor with a tool that always fails.
	r.engine.reg.Register("NetlistEditor", &failingEncap{failAfter: 0})
	f := flow.New(r.s, r.db)
	n := f.MustAdd("EditedNetlist")
	if err := f.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(n).Dep("fd")
	if err := f.Bind(tn, r.ids["netEdGen"]); err != nil {
		t.Fatal(err)
	}
	before := r.db.Len()
	_, err := r.engine.RunFlow(f)
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	// Nothing half-recorded.
	if r.db.Len() != before {
		t.Errorf("failed run recorded %d instance(s)", r.db.Len()-before)
	}
}

func TestFailureMidLevelStopsDependents(t *testing.T) {
	// Level 1 has a failing task and a succeeding sibling; the parent
	// level must never run, and the error must carry the tool context.
	r := newRig(t)
	r.engine.reg.Register("Extractor", &failingEncap{failAfter: 0})
	f := flow.New(r.s, r.db)
	ver := f.MustAdd("Verification")
	if err := f.ExpandDown(ver, false); err != nil {
		t.Fatal(err)
	}
	verToolN, _ := f.Node(ver).Dep("fd")
	ref, _ := f.Node(ver).Dep("Netlist/reference")
	sub, _ := f.Node(ver).Dep("Netlist/subject")
	// Reference: a working edited netlist; subject: an extraction that
	// will fail.
	if err := f.Specialize(ref, "EditedNetlist"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(ref, false); err != nil {
		t.Fatal(err)
	}
	refToolN, _ := f.Node(ref).Dep("fd")
	if err := f.Specialize(sub, "ExtractedNetlist"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(sub, false); err != nil {
		t.Fatal(err)
	}
	subToolN, _ := f.Node(sub).Dep("fd")
	layN, _ := f.Node(sub).Dep("Layout")
	if err := f.Specialize(layN, "EditedLayout"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(layN, false); err != nil {
		t.Fatal(err)
	}
	layToolN, _ := f.Node(layN).Dep("fd")

	for n, key := range map[flow.NodeID]string{
		verToolN: "verifier", refToolN: "netEdGen", subToolN: "extractor", layToolN: "layEdGen",
	} {
		if err := f.Bind(n, r.ids[key]); err != nil {
			t.Fatal(err)
		}
	}
	r.engine.SetWorkers(4)
	_, err := r.engine.RunFlow(f)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "ExtractedNetlist via Extractor") {
		t.Errorf("error lacks tool context: %v", err)
	}
	// No Verification instance was recorded.
	if got := r.db.InstancesOf("Verification"); len(got) != 0 {
		t.Errorf("dependent task ran despite failure: %v", got)
	}
}

func TestFanOutPartialFailure(t *testing.T) {
	// Two stimuli instances fan out into two simulations; the second
	// simulation fails. The whole run errors and neither performance is
	// recorded (level recording is atomic).
	r := newRig(t)
	r.engine.reg.Register("Simulator", &failingEncap{failAfter: 1})
	f, perf := r.perfFlow(t)
	stimN, _ := f.Node(perf).Dep("Stimuli")
	if err := f.Bind(stimN, r.ids["stim"], r.ids["stim2"]); err != nil {
		t.Fatal(err)
	}
	_, err := r.engine.RunFlow(f)
	if err == nil {
		t.Fatal("expected failure")
	}
	if got := r.db.InstancesOf("Performance"); len(got) != 0 {
		t.Errorf("partial fan-out recorded: %v", got)
	}
}

func TestMissingEncapsulation(t *testing.T) {
	// A schema extended with a tool that has no encapsulation fails at
	// run time with a clear message.
	s := schema.Full()
	s.MustAdd(&schema.EntityType{Name: "MysteryTool", Kind: schema.KindTool})
	s.MustAdd(&schema.EntityType{Name: "MysteryData", Kind: schema.KindData,
		FuncDep: &schema.Dep{Type: "MysteryTool"}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := newRig(t) // rig has its own schema; build a fresh engine here
	db := history.NewDB(s)
	eng := New(s, db, r.store, encap.StandardRegistry())
	tool := db.MustRecord(history.Instance{Type: "MysteryTool"})
	f := flow.New(s, db)
	n := f.MustAdd("MysteryData")
	if err := f.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(n).Dep("fd")
	if err := f.Bind(tn, tool.ID); err != nil {
		t.Fatal(err)
	}
	_, err := eng.RunFlow(f)
	if err == nil || !strings.Contains(err.Error(), "no encapsulation registered") {
		t.Errorf("err = %v", err)
	}
}

func TestNewToolIncorporation(t *testing.T) {
	// §3.3: "simplifying the incorporation of new tools". Adding a new
	// extractor is one schema type (a subtype of Extractor) and one
	// installed instance; every existing flow whose fd is Extractor
	// accepts it unchanged, and the encapsulation resolves through the
	// subtype chain — zero flow edits, zero registry edits.
	r := newRig(t)
	r.s.MustAdd(&schema.EntityType{Name: "TurboExtractor", Kind: schema.KindTool,
		Parent: "Extractor", Doc: "the new, faster extractor"})
	if err := r.s.Validate(); err != nil {
		t.Fatalf("schema after extension: %v", err)
	}
	turbo := r.db.MustRecord(history.Instance{Type: "TurboExtractor", Name: "mextra-2"})

	f := flow.New(r.s, r.db)
	net := f.MustAdd("ExtractedNetlist")
	if err := f.ExpandDown(net, false); err != nil {
		t.Fatal(err)
	}
	extrN, _ := f.Node(net).Dep("fd")
	layN, _ := f.Node(net).Dep("Layout")
	if err := f.Specialize(layN, "EditedLayout"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(layN, false); err != nil {
		t.Fatal(err)
	}
	layToolN, _ := f.Node(layN).Dep("fd")
	// The unchanged flow accepts the new tool instance.
	if err := f.Bind(extrN, turbo.ID); err != nil {
		t.Fatalf("new tool rejected by old flow: %v", err)
	}
	if err := f.Bind(layToolN, r.ids["layEdGen"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("run with new tool: %v", err)
	}
	id, err := res.One(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.db.Get(id).Tool; got != turbo.ID {
		t.Errorf("derivation tool = %s, want %s", got, turbo.ID)
	}
}

func TestTaskDelayOnlyAffectsToolRuns(t *testing.T) {
	r := newRig(t)
	r.engine.SetTaskDelay(5 * time.Millisecond)
	defer r.engine.SetTaskDelay(0)
	f := flow.New(r.s, r.db)
	n := f.MustAdd("EditedNetlist")
	if err := f.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f.Node(n).Dep("fd")
	if err := f.Bind(tn, r.ids["netEdGen"]); err != nil {
		t.Fatal(err)
	}
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 5*time.Millisecond {
		t.Errorf("task delay not applied: %v", res.Elapsed)
	}
}

func TestSetWorkersClamp(t *testing.T) {
	r := newRig(t)
	r.engine.SetWorkers(-3)
	f, _ := r.perfFlow(t)
	if _, err := r.engine.RunFlow(f); err != nil {
		t.Errorf("run with clamped workers: %v", err)
	}
}
