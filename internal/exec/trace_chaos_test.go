package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/trace"
)

// Chaos-trace tests: under deterministic fault injection the event
// stream must agree with the engine's own accounting — retry events
// with the retry policy's attempt numbers, timeout events with
// Stats.Timeouts, skip events with Result.Skipped.

// eventsByUnit groups a run's events of one kind by global unit index.
func eventsByUnit(events []trace.Event, kind trace.Kind) map[int][]trace.Event {
	out := make(map[int][]trace.Event)
	for _, ev := range events {
		if ev.Kind == kind {
			out[ev.Unit] = append(out[ev.Unit], ev)
		}
	}
	return out
}

// Every transiently failing site retries exactly TransientRuns times
// with consecutive attempt numbers, then commits without a trace of
// the attempts on the UnitCommitted event.
func TestTraceChaosRetryEventsMatchPolicy(t *testing.T) {
	r := newRig(t)
	inj := faults.New(3, faults.Config{TransientRate: 1, TransientRuns: 2})
	inj.Instrument(r.engine.reg)
	r.engine.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, Seed: 7})
	buf := trace.NewBuffer()
	r.engine.SetTracer(buf)
	f, _ := r.perfFlow(t)
	res, err := r.engine.RunFlow(f)
	if err != nil {
		t.Fatalf("run should succeed after retries: %v", err)
	}
	events := buf.Events()

	retries := eventsByUnit(events, trace.KindUnitRetried)
	total := 0
	for unit, evs := range retries {
		if len(evs) != 2 {
			t.Errorf("unit %d has %d UnitRetried events, want 2 (TransientRuns)", unit, len(evs))
		}
		for i, ev := range evs {
			if ev.Attempt != i+1 {
				t.Errorf("unit %d retry %d has attempt %d, want %d", unit, i, ev.Attempt, i+1)
			}
			if !strings.Contains(ev.Err, "transient") {
				t.Errorf("unit %d retry error %q does not name the injected fault", unit, ev.Err)
			}
		}
		total += len(evs)
	}
	// The three encapsulated tool runs fault; the Circuit composition
	// does not pass through the instrumented registry.
	if len(retries) != 3 {
		t.Errorf("%d units retried, want 3 (the encapsulated tool runs)", len(retries))
	}
	if total != res.Stats.Retries {
		t.Errorf("UnitRetried events = %d, Stats.Retries = %d; they must agree", total, res.Stats.Retries)
	}
	for _, ev := range events {
		if ev.Kind == trace.KindUnitCommitted && ev.Attempt != 0 {
			t.Errorf("UnitCommitted carries attempt %d; it must be attempt-free for trace determinism", ev.Attempt)
		}
	}
	if got := len(eventsByUnit(events, trace.KindUnitCommitted)); got != res.TasksRun {
		t.Errorf("UnitCommitted units = %d, TasksRun = %d", got, res.TasksRun)
	}
}

// A site that outlives the retry budget emits MaxAttempts-1 UnitRetried
// events and one UnitFailed whose attempt equals MaxAttempts.
func TestTraceChaosRetryExhaustion(t *testing.T) {
	r := newRig(t)
	inj := faults.New(3, faults.Config{TransientRate: 1, TransientRuns: 10})
	inj.Instrument(r.engine.reg)
	r.engine.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond, Seed: 7})
	buf := trace.NewBuffer()
	r.engine.SetTracer(buf)
	f := flow.New(r.s, r.db)
	addBranch(t, r, f)
	if _, err := r.engine.RunFlow(f); err == nil {
		t.Fatal("run must fail once the retry budget is exhausted")
	}

	var kinds []trace.Kind
	var attempts []int
	for _, ev := range buf.Events() {
		if ev.Unit == 0 && (ev.Kind == trace.KindUnitRetried || ev.Kind == trace.KindUnitFailed) {
			kinds = append(kinds, ev.Kind)
			attempts = append(attempts, ev.Attempt)
		}
	}
	if len(kinds) != 3 || kinds[0] != trace.KindUnitRetried || kinds[1] != trace.KindUnitRetried || kinds[2] != trace.KindUnitFailed {
		t.Fatalf("attempt events = %v, want [UnitRetried UnitRetried UnitFailed]", kinds)
	}
	for i, a := range attempts {
		if a != i+1 {
			t.Errorf("attempt numbers = %v, want [1 2 3]", attempts)
			break
		}
	}
}

// A hung tool cut off by the task timeout emits UnitTimedOut; the
// event count agrees with Stats.Timeouts.
func TestTraceChaosTimeoutEvents(t *testing.T) {
	r := newRig(t)
	inj := faults.New(11, faults.Config{HangRate: 1, HangLimit: time.Hour})
	inj.Instrument(r.engine.reg)
	r.engine.SetTaskTimeout(50 * time.Millisecond)
	buf := trace.NewBuffer()
	r.engine.SetTracer(buf)
	f := flow.New(r.s, r.db)
	addBranch(t, r, f)
	res, err := r.engine.RunFlow(f)
	if err == nil {
		t.Fatal("hung run must fail")
	}
	var timedOut, failed int
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case trace.KindUnitTimedOut:
			timedOut++
			if !strings.Contains(ev.Err, "task timeout") {
				t.Errorf("UnitTimedOut err %q does not name the timeout", ev.Err)
			}
		case trace.KindUnitFailed:
			failed++
		}
	}
	if timedOut != res.Stats.Timeouts || timedOut != 1 {
		t.Errorf("UnitTimedOut events = %d, Stats.Timeouts = %d, want both 1", timedOut, res.Stats.Timeouts)
	}
	if failed != 1 {
		t.Errorf("UnitFailed events = %d, want 1", failed)
	}
}

// Under ContinueOnError the UnitSkipped events name exactly the nodes
// of Result.Skipped and blame the root-cause producer, while the
// independent branches commit normally.
func TestTraceChaosSkipEventsMatchResult(t *testing.T) {
	r := newRig(t)
	inj := faults.New(5, faults.Config{})
	inj.SetToolConfig("LayoutEditor", faults.Config{PermanentRate: 1})
	inj.Instrument(r.engine.reg)
	r.engine.SetFailurePolicy(ContinueOnError)
	r.engine.SetWorkers(4)
	buf := trace.NewBuffer()
	r.engine.SetTracer(buf)

	f := flow.New(r.s, r.db)
	for i := 0; i < 7; i++ {
		addBranch(t, r, f)
	}
	net, layN := addExtractionChain(t, r, f)
	res, err := r.engine.RunFlow(f)
	if err == nil {
		t.Fatal("poisoned run must still report an error")
	}
	events := buf.Events()

	skipped := make(map[flow.NodeID]bool)
	for _, ev := range events {
		if ev.Kind != trace.KindUnitSkipped {
			continue
		}
		for _, n := range ev.Nodes {
			skipped[flow.NodeID(n)] = true
		}
		if ev.Blame != int(layN) {
			t.Errorf("UnitSkipped blames node %d, want %d (the poisoned EditedLayout)", ev.Blame, layN)
		}
	}
	if len(skipped) != len(res.Skipped) || !skipped[net] {
		t.Errorf("UnitSkipped nodes %v != Result.Skipped %v", skipped, res.Skipped)
	}
	if got := len(eventsByUnit(events, trace.KindUnitCommitted)); got != 7 {
		t.Errorf("UnitCommitted units = %d, want 7 (the independent branches)", got)
	}
	var fin *trace.Event
	for i := range events {
		if events[i].Kind == trace.KindRunFinished {
			fin = &events[i]
		}
	}
	if fin == nil {
		t.Fatal("no RunFinished event")
	}
	if fin.Committed != res.TasksRun || fin.Failed != res.Stats.UnitsFailed || fin.Skipped != res.Stats.JobsSkipped {
		t.Errorf("RunFinished counters {committed:%d failed:%d skipped:%d} disagree with Result {%d %d %d}",
			fin.Committed, fin.Failed, fin.Skipped, res.TasksRun, res.Stats.UnitsFailed, res.Stats.JobsSkipped)
	}
}
