package exec

import (
	"fmt"
	"time"

	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/memo"
)

// This file is the planning half of the engine: it turns a validated
// flow into a job graph whose outcome — the sequence of instance IDs
// committed to history — is fully determined before a single tool runs.
//
// History IDs are "Type:seq" with one global counter, so commit order
// determines IDs. The planner walks jobs in topological order, simulates
// the counter (starting from db.Seq()) and pre-assigns every output ID.
// Execution may then finish in any order: workers hand artifacts to
// dependents through an in-memory pending set keyed by planned ID, and
// the committer records jobs strictly in plan order, so the database
// ends up byte-identical to what the old level-barrier engine produced.

// plannedJob is one group of nodes computed by a shared sequence of tool
// runs, plus its scheduling state. A plan is used by exactly one run, so
// the mutable scheduler fields live here.
type plannedJob struct {
	idx       int           // position in plan.jobs == commit order
	nodes     []flow.NodeID // group members, representative first
	repType   string        // representative node's type (stats, delay keying)
	composite bool
	level     int // dependency level of the representative node
	// combos are the input combinations to execute, each a concrete
	// assignment of instances to dependency keys (plus "fd").
	combos []map[string]history.ID
	// outIDs[ci][ni] is the pre-assigned instance ID of nodes[ni] under
	// combos[ci].
	outIDs [][]history.ID
	// deps / dependents are edges of the job graph (indices into
	// plan.jobs). Dataflow mode: distinct producer jobs of the group's
	// inputs. Barrier mode: every job of the previous nonempty level.
	deps       []int
	dependents []int

	// Scheduler state (owned by the coordinator goroutine).
	pending   int // unfinished dependency jobs
	remaining int // unfinished combos
	done      bool
	failed    bool
	resumed   bool // restored from a recovered WAL, not executed (durable.go)
	skipped   bool // never dispatched: a producer failed (ContinueOnError)
	blame     int  // root-cause job index when skipped
	outputs   []encap.Outputs
	dur       time.Duration // longest single combo, for the critical path
	// Memoization state (allocated by execute only when a result cache
	// is installed): per-combo derivation keys, computed at ready time
	// and used by the commit-time publish, and per-combo hit marks.
	memoKeys []memo.Key
	cacheHit []bool
	// outRefs[ci] maps each grouped node's type to the content address
	// recordJob stored its artifact under — captured at commit so
	// memoPublish reuses the refs instead of re-hashing every output.
	outRefs []map[string]datastore.Ref

	// Per-unit observations buffered for deterministic trace emission
	// (allocated by newRunTracer only when a sink is installed).
	unitWait []time.Duration
	unitDur  []time.Duration
	unitLog  [][]attemptRec
}

// plan is the complete, deterministic execution plan of one run.
type plan struct {
	jobs  []*plannedJob
	bound map[flow.NodeID][]history.ID // needed nodes satisfied by bindings
	units int                          // total (job, combo) executions
}

// reachable returns the nodes needed to compute the targets, failing on
// a dependency edge that references a node no longer in the flow. Such
// dangling edges cannot be produced by the flow operations and are
// caught by Validate, but a hand-assembled graph must yield an error
// here, never a panic.
func reachable(f *flow.Flow, targets []flow.NodeID) (map[flow.NodeID]bool, error) {
	out := make(map[flow.NodeID]bool)
	var visit func(id flow.NodeID) error
	visit = func(id flow.NodeID) error {
		if out[id] {
			return nil
		}
		n := f.Node(id)
		if n == nil {
			return fmt.Errorf("exec: dangling dependency: node %d is not in the flow", id)
		}
		out[id] = true
		if n.IsBound() {
			return nil // bound nodes stand in for their subtree
		}
		for _, k := range n.DepKeys() {
			c, _ := n.Dep(k)
			if f.Node(c) == nil {
				return fmt.Errorf("exec: node %d (%s): dependency %q is a dangling reference to removed node %d",
					id, n.Type, k, c)
			}
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range targets {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// plan builds the job graph for the targets: grouping (pass 1), combo
// enumeration and ID pre-assignment in commit order (pass 2), and job
// dependency edges for the run's scheduling mode (pass 3).
func (r *run) plan(targets []flow.NodeID) (*plan, error) {
	f := r.f
	needed, err := reachable(f, targets)
	if err != nil {
		return nil, err
	}
	order, err := f.Order()
	if err != nil {
		return nil, err
	}
	// Dependency level of each node, computed in one pass over the
	// already-obtained order (calling f.Levels would re-run the
	// topological sort — measurable at generator scale). Node IDs are
	// dense, so a flat slice replaces the map.
	maxID := flow.NodeID(0)
	for _, id := range order {
		if id > maxID {
			maxID = id
		}
	}
	levelOf := make([]int32, maxID+1)
	for _, id := range order {
		n := f.Node(id)
		var l int32
		for _, k := range n.DepKeys() {
			c, _ := n.Dep(k)
			if levelOf[c]+1 > l {
				l = levelOf[c] + 1
			}
		}
		levelOf[id] = l
	}

	// Pass 1: walk nodes in topological order, grouping shared
	// constructions into jobs (Fig. 5 multi-output tasks). Composites
	// never group. Bound nodes contribute their instances directly.
	p := &plan{bound: make(map[flow.NodeID][]history.ID)}
	grouped := make(map[string]*plannedJob)
	producer := make(map[flow.NodeID]*plannedJob)
	for _, id := range order {
		if !needed[id] {
			continue
		}
		n := f.Node(id)
		if n.IsBound() {
			p.bound[id] = n.Bound()
			continue
		}
		t := r.cfg.schema.Type(n.Type)
		if t.IsPrimitiveSource() {
			return nil, fmt.Errorf("exec: node %d (%s) is an unbound primitive source", id, n.Type)
		}
		sig := taskSignature(f, id)
		if j, ok := grouped[sig]; ok && !t.Composite {
			j.nodes = append(j.nodes, id)
			producer[id] = j
			continue
		}
		j := &plannedJob{idx: len(p.jobs), nodes: []flow.NodeID{id},
			repType: n.Type, composite: t.Composite, level: int(levelOf[id])}
		if !t.Composite {
			grouped[sig] = j
		}
		producer[id] = j
		p.jobs = append(p.jobs, j)
	}

	// Pass 2: enumerate combos and pre-assign output IDs in commit order.
	// Valid in job order because every producer of a job's inputs appears
	// earlier in p.jobs (grouped siblings share the full dependency set).
	created := make(map[flow.NodeID][]history.ID, len(order))
	for id, insts := range p.bound {
		created[id] = insts
	}
	vseq := r.cfg.db.Seq()
	for _, j := range p.jobs {
		combos, err := r.combosFor(j.nodes[0], created)
		if err != nil {
			return nil, err
		}
		j.combos = combos
		j.outputs = make([]encap.Outputs, len(combos))
		j.outIDs = make([][]history.ID, len(combos))
		for ci := range combos {
			j.outIDs[ci] = make([]history.ID, len(j.nodes))
			for ni, nid := range j.nodes {
				vseq++
				j.outIDs[ci][ni] = history.MakeID(f.Node(nid).Type, vseq)
			}
		}
		for ni, nid := range j.nodes {
			ids := make([]history.ID, len(combos))
			for ci := range combos {
				ids[ci] = j.outIDs[ci][ni]
			}
			created[nid] = ids
		}
		p.units += len(combos)
	}

	// Pass 3: job dependency edges.
	switch r.cfg.sched {
	case Barrier:
		// Baseline: every job waits on every job of the previous
		// nonempty level — the old stratum-drain discipline, expressed
		// as edges so both modes share one scheduler (and one commit
		// order, hence identical IDs).
		byLevel := make(map[int][]int)
		var lvls []int
		for _, j := range p.jobs {
			if _, ok := byLevel[j.level]; !ok {
				lvls = append(lvls, j.level)
			}
			byLevel[j.level] = append(byLevel[j.level], j.idx)
		}
		// p.jobs is in topological order, so lvls is ascending.
		for i := 1; i < len(lvls); i++ {
			for _, ji := range byLevel[lvls[i]] {
				p.jobs[ji].deps = append(p.jobs[ji].deps, byLevel[lvls[i-1]]...)
			}
		}
	default:
		// Dataflow: a job depends exactly on the jobs producing its
		// inputs. Bound inputs contribute no edge.
		for _, j := range p.jobs {
			rep := f.Node(j.nodes[0])
			seen := make(map[int]bool)
			for _, k := range rep.DepKeys() {
				c, _ := rep.Dep(k)
				pj, ok := producer[c]
				if !ok || seen[pj.idx] {
					continue
				}
				seen[pj.idx] = true
				j.deps = append(j.deps, pj.idx)
			}
		}
	}
	for _, j := range p.jobs {
		for _, d := range j.deps {
			p.jobs[d].dependents = append(p.jobs[d].dependents, j.idx)
		}
	}
	return p, nil
}

// combosFor enumerates the input combinations of a node: the cartesian
// product of its dependencies' instance lists, in deterministic order,
// capped at the run's combo limit.
func (r *run) combosFor(id flow.NodeID, created map[flow.NodeID][]history.ID) ([]map[string]history.ID, error) {
	n := r.f.Node(id)
	keys := n.DepKeys()
	combos := []map[string]history.ID{{}}
	for _, k := range keys {
		c, _ := n.Dep(k)
		insts := created[c]
		if len(insts) == 0 {
			return nil, fmt.Errorf("exec: node %d dependency %q (node %d) produced no instances", id, k, c)
		}
		if len(combos)*len(insts) > r.cfg.maxCombos {
			return nil, fmt.Errorf("exec: node %d (%s): input fan-out exceeds %d combinations (cartesian product over multi-instance bindings); raise Engine.SetMaxCombos if intended",
				id, n.Type, r.cfg.maxCombos)
		}
		next := make([]map[string]history.ID, 0, len(combos)*len(insts))
		for _, combo := range combos {
			for _, inst := range insts {
				cp := make(map[string]history.ID, len(combo)+1)
				for kk, vv := range combo {
					cp[kk] = vv
				}
				cp[k] = inst
				next = append(next, cp)
			}
		}
		combos = next
	}
	return combos, nil
}
