// Package provenance is the indexed, tamper-evident provenance layer
// over the design-history database. The paper's central claim
// (§3.3/§4.2) is that flow traces subsume version trees: backward and
// forward chaining over per-instance derivation records *is* the
// design-history query. history.Backchain/Forwardchain answer it by
// walking the database's maps under its lock; this package keeps the
// same queries answerable as walks over append-only adjacency indexes
// (index.go) and makes the committed derivation records themselves
// trustworthy with a hash chain persisted through internal/storage
// (chain.go).
//
// Both pieces attach to a history.DB as commit observers
// (db.Observe(...)): the database replays its existing records into the
// observer and then feeds it every commit, in commit order, under the
// commit lock — so the index and the chain are complete and gap-free no
// matter when they attach.
package provenance

import (
	"fmt"
	"sync"

	"repro/internal/history"
)

// backEdge is one derivation arc of a committed instance: the dense
// number of the tool or input instance it was created from.
type backEdge struct {
	child int32
	kind  history.EdgeKind
	key   string // dependency key for EdgeInput arcs (interned)
}

// fwdRec is one use-dependency arc, stored as a per-target linked list
// threaded through one flat slice: record fwdRecs[fwdHead[c]] is the
// most recent use of instance c, and prev chains to the previous one
// (-1 terminates). Forward adjacency grows as later commits use an
// instance, so it cannot be a CSR slice like the backward index; the
// chained layout keeps appends O(1) with no per-instance slice headers.
type fwdRec struct {
	parent int32 // the dependent (the instance that used the target)
	prev   int32 // previous fwdRec of the same target, -1 at the end
	kind   history.EdgeKind
	key    string
}

// Index is the in-memory provenance index: derivation (backward) and
// use-dependency (forward) adjacency over every committed instance,
// maintained incrementally at commit time via history.DB.Observe. Both
// chaining queries become array walks — O(nodes+edges in the answer)
// after an O(1) root lookup — independent of database size, and they
// run under the index's own read lock, off the database's.
//
// The backward index is a classic CSR layout: an instance's derivation
// arcs (tool first, then inputs in input order — the exact emission
// order of history.Backchain) occupy backEdges[backStart[i]:backStart[i+1]].
// Commits are append-only and an instance's derivation never changes
// after commit, which is what makes the CSR form maintainable online.
type Index struct {
	mu   sync.RWMutex
	ids  []history.ID          // dense number -> instance ID, in commit order
	num  map[history.ID]int32  // instance ID -> dense number
	keys map[string]string     // interned dependency keys

	backStart []int32 // len(ids)+1; CSR row starts into backEdges
	backEdges []backEdge

	fwdHead []int32 // per instance: index of most recent fwdRec, or -1
	fwdRecs []fwdRec
}

// NewIndex returns an empty index. Attach it with db.Observe(idx).
func NewIndex() *Index {
	return &Index{
		num:       make(map[history.ID]int32),
		keys:      make(map[string]string),
		backStart: []int32{0},
	}
}

// Len returns the number of indexed instances.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.ids)
}

// Edges returns the number of derivation arcs indexed.
func (x *Index) Edges() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.backEdges)
}

// intern returns the canonical copy of a dependency key so the index
// holds one string header per distinct key, not per edge.
func (x *Index) intern(k string) string {
	if k == "" {
		return ""
	}
	if c, ok := x.keys[k]; ok {
		return c
	}
	x.keys[k] = k
	return k
}

// OnCommit indexes one committed instance. It implements
// history.CommitObserver and is called under the database's commit
// lock, in commit order — so every tool/input the instance references
// is already indexed (the database validated their existence at
// commit). Re-observing an already-indexed instance is a no-op, and an
// edge to an unindexed instance is an invariant violation (the index
// missed a commit) and panics.
func (x *Index) OnCommit(inst *history.Instance) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.num[inst.ID]; ok {
		return
	}
	n := int32(len(x.ids))
	x.ids = append(x.ids, inst.ID)
	x.num[inst.ID] = n
	x.fwdHead = append(x.fwdHead, -1)

	link := func(child history.ID, kind history.EdgeKind, key string) {
		c, ok := x.num[child]
		if !ok {
			panic(fmt.Sprintf("provenance: %s references unindexed instance %s (observer attached without Observe backfill?)", inst.ID, child))
		}
		key = x.intern(key)
		x.backEdges = append(x.backEdges, backEdge{child: c, kind: kind, key: key})
		x.fwdRecs = append(x.fwdRecs, fwdRec{parent: n, prev: x.fwdHead[c], kind: kind, key: key})
		x.fwdHead[c] = int32(len(x.fwdRecs) - 1)
	}
	if inst.Tool != "" {
		link(inst.Tool, history.EdgeTool, "")
	}
	for _, in := range inst.Inputs {
		link(in.Inst, history.EdgeInput, in.Key)
	}
	x.backStart = append(x.backStart, int32(len(x.backEdges)))
}

// Backchain computes the derivation history of id from the index:
// everything transitively used to create it, following tool and input
// arcs, up to depth levels (depth < 0 means unbounded). The result is
// identical — node order, edge order, every field — to
// history.DB.Backchain over the same database.
func (x *Index) Backchain(id history.ID, depth int) (*history.Derivation, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	root, ok := x.num[id]
	if !ok {
		return nil, fmt.Errorf("provenance: no instance %s in index", id)
	}
	// Two passes over the CSR rows: a counting pass in pure int32s, then
	// emission into exactly-sized slices. The count pass is nearly free
	// next to the emission (no string writes, no allocation), and it buys
	// the emission pass single-allocation output — no append growth
	// copies, which otherwise dominate a large answer. The naive walker
	// has no cheap counting pass to run: its per-hop cost *is* the
	// expensive part. visited doubles across the passes: 1 = seen by the
	// count, 2 = emitted.
	visited := make([]uint8, len(x.ids))
	// Swap buffers for the BFS levels: a deep chain visits one node per
	// level, so allocating a fresh frontier per level would cost an
	// allocation per answer node.
	frontier, next := append(make([]int32, 0, 64), root), make([]int32, 0, 64)
	visited[root] = 1
	nodes, edges := 1, 0
	for level := 0; len(frontier) > 0 && (depth < 0 || level < depth); level++ {
		next = next[:0]
		for _, cur := range frontier {
			for _, e := range x.backEdges[x.backStart[cur]:x.backStart[cur+1]] {
				edges++
				if visited[e.child] != 1 {
					visited[e.child] = 1
					nodes++
					next = append(next, e.child)
				}
			}
		}
		frontier, next = next, frontier
	}

	d := &history.Derivation{Root: id, Nodes: append(make([]history.ID, 0, nodes), id)}
	if edges > 0 {
		d.Edges = make([]history.Edge, 0, edges)
	}
	frontier = append(frontier[:0], root)
	visited[root] = 2
	for level := 0; len(frontier) > 0 && (depth < 0 || level < depth); level++ {
		next = next[:0]
		for _, cur := range frontier {
			for _, e := range x.backEdges[x.backStart[cur]:x.backStart[cur+1]] {
				d.Edges = append(d.Edges, history.Edge{
					Parent: x.ids[cur], Child: x.ids[e.child], Kind: e.kind, Key: e.key,
				})
				if visited[e.child] != 2 {
					visited[e.child] = 2
					d.Nodes = append(d.Nodes, x.ids[e.child])
					next = append(next, e.child)
				}
			}
		}
		frontier, next = next, frontier
	}
	return d, nil
}

// Forwardchain computes the use-dependencies of id from the index:
// everything transitively created from it, up to depth levels
// (depth < 0 means unbounded). Edges point from dependent to used
// instance, matching history.DB.Forwardchain.
//
// One documented divergence from the naive walker: when a dependent
// uses the same instance under several dependency keys, the naive
// walker re-derives the key as the first match for every occurrence,
// while the index reports each arc's actual key. For every corpus and
// generated world in this repository (one role per use) the outputs
// are byte-identical; the differential tests pin that.
func (x *Index) Forwardchain(id history.ID, depth int) (*history.Derivation, error) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	root, ok := x.num[id]
	if !ok {
		return nil, fmt.Errorf("provenance: no instance %s in index", id)
	}
	d := &history.Derivation{Root: id, Nodes: []history.ID{id}}
	visited := make([]bool, len(x.ids))
	visited[root] = true
	// Swap buffers, as in Backchain: one allocation per query, not one
	// per BFS level.
	frontier, next := append(make([]int32, 0, 64), root), make([]int32, 0, 64)
	var uses []int32 // scratch: fwdRec indexes of the current node, reversed to commit order
	for level := 0; len(frontier) > 0 && (depth < 0 || level < depth); level++ {
		next = next[:0]
		for _, cur := range frontier {
			// The chain threads newest-first; the naive walker emits
			// dependents in usedBy append (commit) order, so reverse.
			uses = uses[:0]
			for r := x.fwdHead[cur]; r != -1; r = x.fwdRecs[r].prev {
				uses = append(uses, r)
			}
			for i := len(uses) - 1; i >= 0; i-- {
				rec := &x.fwdRecs[uses[i]]
				d.Edges = append(d.Edges, history.Edge{
					Parent: x.ids[rec.parent], Child: x.ids[cur], Kind: rec.kind, Key: rec.key,
				})
				if !visited[rec.parent] {
					visited[rec.parent] = true
					d.Nodes = append(d.Nodes, x.ids[rec.parent])
					next = append(next, rec.parent)
				}
			}
		}
		frontier, next = next, frontier
	}
	return d, nil
}
