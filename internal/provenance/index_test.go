package provenance

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/flowgen"
	"repro/internal/history"
)

// diffWorld builds a populated synthetic world and an index observing
// its database (backfill path: the instances exist before Observe).
func diffWorld(t *testing.T, spec flowgen.Spec) (*flowgen.Bench, []history.ID, *Index) {
	t.Helper()
	g, err := flowgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, cells, err := g.Populate()
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex()
	b.DB.Observe(idx)
	return b, cells, idx
}

// assertSameDerivation requires the indexed and naive answers to agree
// exactly: root, node order, edge order, every field.
func assertSameDerivation(t *testing.T, label string, naive, indexed *history.Derivation, err1, err2 error) {
	t.Helper()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: naive err=%v, indexed err=%v", label, err1, err2)
	}
	if err1 != nil {
		return
	}
	if !reflect.DeepEqual(naive, indexed) {
		t.Fatalf("%s: derivations diverge\nnaive:   %+v\nindexed: %+v", label, naive, indexed)
	}
}

// TestIndexDifferentialSeeds is the differential gate of the tentpole:
// over 24 random seeds spread across every generator shape, the indexed
// Backchain/Forwardchain must reproduce the naive walkers' output
// exactly — all roots sampled across the graph, bounded and unbounded
// depths both.
func TestIndexDifferentialSeeds(t *testing.T) {
	shapes := flowgen.Shapes()
	for seed := int64(1); seed <= 24; seed++ {
		spec := flowgen.Spec{
			Cells: 40 + int(seed%5)*23,
			Shape: shapes[int(seed)%len(shapes)],
			Seed:  seed,
		}
		b, cells, idx := diffWorld(t, spec)
		if idx.Len() != b.DB.Len() {
			t.Fatalf("seed %d: index has %d instances, db has %d", seed, idx.Len(), b.DB.Len())
		}
		roots := []history.ID{
			cells[0], cells[len(cells)/2], cells[len(cells)-1], b.Tools[0],
		}
		for _, root := range roots {
			for _, depth := range []int{-1, 0, 1, 2, 5} {
				nb, e1 := b.DB.Backchain(root, depth)
				ib, e2 := idx.Backchain(root, depth)
				assertSameDerivation(t, "backchain", nb, ib, e1, e2)
				nf, e3 := b.DB.Forwardchain(root, depth)
				iff, e4 := idx.Forwardchain(root, depth)
				assertSameDerivation(t, "forwardchain", nf, iff, e3, e4)
			}
		}
	}
}

// TestIndexLiveCommits attaches the observer to an empty database and
// records through it — the commit-time update path rather than the
// Observe backfill — and requires the same differential equality.
func TestIndexLiveCommits(t *testing.T) {
	db := history.NewDB(flowgen.Schema())
	idx := NewIndex()
	db.Observe(idx)

	g, err := flowgen.Generate(flowgen.Spec{Cells: 50, Shape: flowgen.Diamond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Re-record the generated derivation into the observed database.
	b, cells, err := g.Populate()
	if err != nil {
		t.Fatal(err)
	}
	remap := make(map[history.ID]history.ID)
	for _, in := range b.DB.All() {
		rec := history.Instance{Type: in.Type, User: in.User, Data: in.Data}
		if in.Tool != "" {
			rec.Tool = remap[in.Tool]
		}
		for _, x := range in.Inputs {
			rec.Inputs = append(rec.Inputs, history.Input{Key: x.Key, Inst: remap[x.Inst]})
		}
		id, err := db.RecordID(rec)
		if err != nil {
			t.Fatal(err)
		}
		remap[in.ID] = id
	}
	if idx.Len() != db.Len() {
		t.Fatalf("index has %d instances, db has %d", idx.Len(), db.Len())
	}
	for _, c := range []history.ID{remap[cells[0]], remap[cells[len(cells)-1]]} {
		nb, e1 := db.Backchain(c, -1)
		ib, e2 := idx.Backchain(c, -1)
		assertSameDerivation(t, "backchain", nb, ib, e1, e2)
		nf, e3 := db.Forwardchain(c, -1)
		iff, e4 := idx.Forwardchain(c, -1)
		assertSameDerivation(t, "forwardchain", nf, iff, e3, e4)
	}
}

// TestIndexDuringEngineRun attaches the index before a real engine run,
// so the commits arrive through exec's recordJob path, and checks the
// differential equality over the run's results.
func TestIndexDuringEngineRun(t *testing.T) {
	b, err := flowgen.Build(flowgen.Spec{Cells: 40, Shape: flowgen.FanOutIn, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex()
	b.DB.Observe(idx)
	eng := exec.New(b.Schema, b.DB, b.Store, b.Reg)
	res, err := eng.RunFlow(b.Flow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Units == 0 {
		t.Fatal("engine ran no units")
	}
	if idx.Len() != b.DB.Len() {
		t.Fatalf("index has %d instances, db has %d after run", idx.Len(), b.DB.Len())
	}
	if idx.Edges() == 0 {
		t.Fatal("index has no edges after run")
	}
	for _, id := range b.DB.All() {
		nb, e1 := b.DB.Backchain(id.ID, -1)
		ib, e2 := idx.Backchain(id.ID, -1)
		assertSameDerivation(t, "backchain", nb, ib, e1, e2)
	}
}

// TestIndexUnknownRoot pins the error for a root the index has never
// seen.
func TestIndexUnknownRoot(t *testing.T) {
	idx := NewIndex()
	if _, err := idx.Backchain("Nope:1", -1); err == nil || !strings.Contains(err.Error(), "no instance Nope:1") {
		t.Fatalf("backchain error = %v", err)
	}
	if _, err := idx.Forwardchain("Nope:1", -1); err == nil || !strings.Contains(err.Error(), "no instance Nope:1") {
		t.Fatalf("forwardchain error = %v", err)
	}
}

// TestIndexReobserveIdempotent checks that observing the same commit
// twice (as a second Observe backfill would) indexes it once.
func TestIndexReobserveIdempotent(t *testing.T) {
	b, _, idx := diffWorld(t, flowgen.Spec{Cells: 10, Shape: flowgen.Chain, Seed: 1})
	n, e := idx.Len(), idx.Edges()
	b.DB.Observe(idx) // replays everything again
	if idx.Len() != n || idx.Edges() != e {
		t.Fatalf("re-observe changed the index: %d/%d -> %d/%d nodes/edges", n, e, idx.Len(), idx.Edges())
	}
}

// TestIndexMissingChildPanics pins the invariant violation: an observer
// fed a commit whose inputs it never saw must fail loudly, not build a
// silently incomplete index.
func TestIndexMissingChildPanics(t *testing.T) {
	idx := NewIndex()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for unindexed child")
		}
	}()
	idx.OnCommit(&history.Instance{ID: "Cell:2", Type: "Cell", Tool: "GenTool:1"})
}
