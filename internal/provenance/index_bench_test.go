package provenance

import (
	"testing"

	"repro/internal/flowgen"
	"repro/internal/history"
)

// benchWorld caches one populated chain world + index across the
// chaining benchmarks (Populate dominates setup otherwise).
var benchWorld struct {
	b    *flowgen.Bench
	deep history.ID
	idx  *Index
}

func benchChainWorld(b *testing.B) (*flowgen.Bench, history.ID, *Index) {
	b.Helper()
	if benchWorld.b == nil {
		g, err := flowgen.Generate(flowgen.Spec{Cells: 100000, Shape: flowgen.Chain, Seed: 1993})
		if err != nil {
			b.Fatal(err)
		}
		w, ids, err := g.Populate()
		if err != nil {
			b.Fatal(err)
		}
		idx := NewIndex()
		w.DB.Observe(idx)
		benchWorld.b, benchWorld.deep, benchWorld.idx = w, ids[len(ids)-1], idx
	}
	return benchWorld.b, benchWorld.deep, benchWorld.idx
}

// BenchmarkBackchainIndexed / BenchmarkBackchainNaive: the deep
// unbounded backchain (25k nodes at 100k cells) — the pair behind the
// flowbench provenance section's acceptance ratio, runnable under
// -cpuprofile in isolation.
func BenchmarkBackchainIndexed(b *testing.B) {
	_, deep, idx := benchChainWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Backchain(deep, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackchainNaive(b *testing.B) {
	w, deep, _ := benchChainWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DB.Backchain(deep, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardchainIndexed(b *testing.B) {
	w, _, idx := benchChainWorld(b)
	root := benchRoot(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Forwardchain(root, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardchainNaive(b *testing.B) {
	w, _, _ := benchChainWorld(b)
	root := benchRoot(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DB.Forwardchain(root, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRoot(b *testing.B, w *flowgen.Bench) history.ID {
	b.Helper()
	root := history.MakeID("GenTool", 1)
	if w.DB.Get(root) == nil {
		b.Fatalf("no %s in bench world", root)
	}
	return root
}
