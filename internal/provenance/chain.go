package provenance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/history"
	"repro/internal/storage"
)

// This file makes the derivation record itself trustworthy: every
// committed instance is appended to a hash chain persisted through a
// storage.Log (the same framed-file machinery as the run WAL). Each
// chain record's digest is SHA-256 over its canonical payload, and the
// payload embeds the predecessor's digest — so mutating, dropping,
// inserting or reordering any record breaks the chain at (or right
// after) the damage, and Verify names the first record that fails.
//
// Record encoding is canonical: a hand-rolled, deterministic JSON form
// with every field always present and keys in a fixed order (the same
// reflection-free idiom as internal/storage's WAL encoder). Canonical
// bytes are what the digest covers and what Verify re-derives, so any
// re-encoding ambiguity is off the table: a persisted record is valid
// iff it is byte-identical to the canonical encoding of its decoded
// fields and its digest and predecessor link check out.

// GenesisDigest is the "previous digest" of the first chain record:
// 32 zero bytes, hex-encoded.
var GenesisDigest = hex.EncodeToString(make([]byte, sha256.Size))

// RecordInput is one input arc of a chain record.
type RecordInput struct {
	Key  string `json:"key"`
	Inst string `json:"inst"`
}

// Record is one link of the provenance hash chain: the derivation-
// relevant fields of a committed instance, its position (Seq, 0-based
// in chain order), the predecessor digest and its own digest.
type Record struct {
	Seq     int           `json:"seq"`
	ID      string        `json:"id"`
	Type    string        `json:"type"`
	Tool    string        `json:"tool"`
	Inputs  []RecordInput `json:"inputs"`
	Data    string        `json:"data"`
	User    string        `json:"user"`
	Created int64         `json:"created"` // unix nanoseconds of the commit timestamp
	Prev    string        `json:"prev"`    // hex SHA-256 of the previous record's payload
	Digest  string        `json:"digest"`  // hex SHA-256 of this record's payload
}

// appendPayload appends the canonical payload encoding of r — the full
// record minus the digest field. The digest is SHA-256 over exactly
// these bytes; Prev is part of them, which is what chains the records.
func appendPayload(b []byte, r *Record) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, int64(r.Seq), 10)
	b = append(b, `,"id":`...)
	b = appendString(b, r.ID)
	b = append(b, `,"type":`...)
	b = appendString(b, r.Type)
	b = append(b, `,"tool":`...)
	b = appendString(b, r.Tool)
	b = append(b, `,"inputs":[`...)
	for i := range r.Inputs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"key":`...)
		b = appendString(b, r.Inputs[i].Key)
		b = append(b, `,"inst":`...)
		b = appendString(b, r.Inputs[i].Inst)
		b = append(b, '}')
	}
	b = append(b, `],"data":`...)
	b = appendString(b, r.Data)
	b = append(b, `,"user":`...)
	b = appendString(b, r.User)
	b = append(b, `,"created":`...)
	b = strconv.AppendInt(b, r.Created, 10)
	b = append(b, `,"prev":`...)
	b = appendString(b, r.Prev)
	return b
}

// appendRecord appends the full canonical encoding: payload + digest.
func appendRecord(b []byte, r *Record) []byte {
	b = appendPayload(b, r)
	b = append(b, `,"digest":`...)
	b = appendString(b, r.Digest)
	return append(b, '}')
}

// appendString appends a JSON string literal. The fast path copies
// plain ASCII byte-for-byte; anything needing escapes falls back to
// encoding/json (identical output, just slower).
func appendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// recordOf builds the chain record for a committed instance at chain
// position seq with the given predecessor digest, computing its digest.
func recordOf(inst *history.Instance, seq int, prev string) (*Record, []byte) {
	r := &Record{
		Seq:     seq,
		ID:      string(inst.ID),
		Type:    inst.Type,
		Tool:    string(inst.Tool),
		Data:    string(inst.Data),
		User:    inst.User,
		Created: inst.Created.UnixNano(),
		Prev:    prev,
	}
	if len(inst.Inputs) > 0 {
		r.Inputs = make([]RecordInput, len(inst.Inputs))
		for i, in := range inst.Inputs {
			r.Inputs[i] = RecordInput{Key: in.Key, Inst: string(in.Inst)}
		}
	}
	payload := appendPayload(nil, r)
	r.Digest = digestHex(payload)
	return r, appendRecord(payload[:0], r)
}

// digestHex returns the hex SHA-256 of b.
func digestHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Chain appends hash-chained derivation records to a storage.Log. It
// implements history.CommitObserver: attach it with db.Observe(c) and
// every commit (existing records first, then live ones, in commit
// order) becomes one chain record. Appends are buffered by the log;
// call Sync (or Close) to force the durability barrier — the same
// group-commit discipline as the run WAL.
//
// OnCommit cannot return an error (the observer interface is fire-and-
// forget under the DB's commit lock), so the first append failure is
// latched and surfaced by the next Sync/Verify/Close call.
type Chain struct {
	mu   sync.Mutex
	log  storage.Log
	n    int    // records appended so far
	last string // digest of the newest record (GenesisDigest when empty)
	err  error  // first append failure, latched
	buf  []byte // encode buffer, reused across appends
}

// NewChain starts an empty chain on an empty log.
func NewChain(log storage.Log) *Chain {
	return &Chain{log: log, last: GenesisDigest}
}

// OpenChain resumes a chain from a log's committed records: it verifies
// them (VerifyLog) and positions the chain to append after the last
// one. A fresh (empty) log yields an empty chain.
func OpenChain(log storage.Log) (*Chain, error) {
	recs, err := log.Committed()
	if err != nil {
		return nil, fmt.Errorf("provenance: reading chain log: %w", err)
	}
	last, err := verifyRecords(recs)
	if err != nil {
		return nil, err
	}
	return &Chain{log: log, n: len(recs), last: last}, nil
}

// Len returns the number of records appended to the chain.
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// OnCommit appends one chain record for a committed instance.
func (c *Chain) OnCommit(inst *history.Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	rec, raw := recordOf(inst, c.n, c.last)
	c.buf = append(c.buf[:0], raw...)
	if err := c.log.Append(c.buf); err != nil {
		c.err = fmt.Errorf("provenance: appending chain record %d (%s): %w", c.n, inst.ID, err)
		return
	}
	c.n++
	c.last = rec.Digest
}

// Sync forces the chain's records onto stable storage and returns any
// latched append failure.
func (c *Chain) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.log.Sync()
}

// Close syncs and closes the underlying log.
func (c *Chain) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		c.log.Close()
		return c.err
	}
	if err := c.log.Sync(); err != nil {
		c.log.Close()
		return err
	}
	return c.log.Close()
}

// Verify syncs the log, re-reads every committed record and checks the
// whole chain, including that no tail records are missing (the chain
// knows how many it appended, which a cold reader cannot). It returns
// nil iff the persisted chain is exactly what was appended.
func (c *Chain) Verify() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if err := c.log.Sync(); err != nil {
		return err
	}
	recs, err := c.log.Committed()
	if err != nil {
		return fmt.Errorf("provenance: reading chain log: %w", err)
	}
	// Internal consistency first: interior damage names the earlier
	// record; only an internally consistent chain of the wrong length is
	// a pure truncation/extension.
	if _, err := verifyRecords(recs); err != nil {
		return err
	}
	if len(recs) > c.n {
		return fmt.Errorf("provenance: chain has %d records, expected %d (record %d not appended by this chain)",
			len(recs), c.n, c.n)
	}
	if len(recs) < c.n {
		return fmt.Errorf("provenance: chain truncated: %d records on storage, expected %d (record %d missing)",
			len(recs), c.n, len(recs))
	}
	return nil
}

// VerifyLog checks the internal consistency of a persisted chain —
// decodability, canonical encoding, digests, sequence numbers and
// predecessor links — and returns the number of valid records. It is
// the cold-boot check (flowd -verify-provenance): it detects any
// mutation, any interior drop or insertion, and any reorder, naming
// the first bad record. What a cold reader cannot detect is removal of
// records from the tail — that needs the expected count, which a live
// Chain has (Verify) and a boot check cross-references against the
// run's WAL.
func VerifyLog(log storage.Log) (int, error) {
	recs, err := log.Committed()
	if err != nil {
		return 0, fmt.Errorf("provenance: reading chain log: %w", err)
	}
	if _, err := verifyRecords(recs); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// verifyRecords checks a sequence of raw chain records and returns the
// digest of the last one (GenesisDigest for an empty chain). Checks per
// record, in order of precedence: decodable; sequence number matches
// its position (catches drops, insertions and reorders); digest matches
// SHA-256 of the canonical payload (catches any semantic mutation,
// prev included); predecessor link matches the previous record's
// digest (catches self-consistent rewrites — flagged at the first
// record whose link no longer holds); raw bytes match the canonical
// re-encoding (catches non-semantic byte tampering that decoding
// normalises away). The returned error names the first failing record.
func verifyRecords(recs [][]byte) (string, error) {
	prev := GenesisDigest
	var buf []byte
	for i, raw := range recs {
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			return "", fmt.Errorf("provenance: record %d undecodable: %v", i, err)
		}
		if r.Seq != i {
			return "", fmt.Errorf("provenance: record %d (%s): sequence %d out of order (want %d) — record dropped, inserted or reordered",
				i, r.ID, r.Seq, i)
		}
		buf = appendPayload(buf[:0], &r)
		if got := digestHex(buf); got != r.Digest {
			return "", fmt.Errorf("provenance: record %d (%s): digest mismatch — payload mutated", i, r.ID)
		}
		if r.Prev != prev {
			return "", fmt.Errorf("provenance: record %d (%s): predecessor link broken — an earlier record was rewritten or the chain was reordered",
				i, r.ID)
		}
		buf = appendRecord(buf[:0], &r)
		if !bytes.Equal(buf, raw) {
			return "", fmt.Errorf("provenance: record %d (%s): non-canonical bytes — record tampered without changing its decoded form", i, r.ID)
		}
		prev = r.Digest
	}
	return prev, nil
}
