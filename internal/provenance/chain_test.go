package provenance

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/flowgen"
)

// tamperLog is a storage.Log whose committed records the test can
// mutate, drop, swap or rewrite — the adversary's view of the
// persisted chain.
type tamperLog struct {
	recs [][]byte
}

func (l *tamperLog) Append(rec []byte) error {
	l.recs = append(l.recs, append([]byte(nil), rec...))
	return nil
}
func (l *tamperLog) Sync() error { return nil }
func (l *tamperLog) Committed() ([][]byte, error) {
	out := make([][]byte, len(l.recs))
	for i, r := range l.recs {
		out[i] = append([]byte(nil), r...)
	}
	return out, nil
}
func (l *tamperLog) TruncateTorn() error { return nil }
func (l *tamperLog) Rewind(keep int) error {
	l.recs = l.recs[:keep]
	return nil
}
func (l *tamperLog) Close() error { return nil }

// failLog fails every Append, to exercise the chain's latched error.
type failLog struct{ tamperLog }

func (l *failLog) Append([]byte) error { return errors.New("disk full") }

// chainWorld populates a synthetic world with a chain attached and
// returns the log and the chain.
func chainWorld(t *testing.T, cells int, seed int64) (*tamperLog, *Chain) {
	t.Helper()
	g, err := flowgen.Generate(flowgen.Spec{Cells: cells, Shape: flowgen.Layered, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := g.Populate()
	if err != nil {
		t.Fatal(err)
	}
	log := &tamperLog{}
	c := NewChain(log)
	b.DB.Observe(c)
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != b.DB.Len() {
		t.Fatalf("chain has %d records, db has %d instances", c.Len(), b.DB.Len())
	}
	return log, c
}

// wantBadRecord asserts that err names exactly record i as the first
// bad one.
func wantBadRecord(t *testing.T, err error, i int, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: verify passed on a tampered chain", label)
	}
	want := fmt.Sprintf("record %d", i)
	if !strings.Contains(err.Error(), want+" ") && !strings.Contains(err.Error(), want+":") {
		t.Fatalf("%s: error does not name %s: %v", label, want, err)
	}
}

func TestChainVerifyClean(t *testing.T) {
	log, c := chainWorld(t, 30, 1)
	if err := c.Verify(); err != nil {
		t.Fatalf("clean chain failed verify: %v", err)
	}
	n, err := VerifyLog(log)
	if err != nil || n != c.Len() {
		t.Fatalf("VerifyLog = %d, %v; want %d, nil", n, err, c.Len())
	}
}

// TestChainTamperFlipByte flips one byte at several offsets of several
// records and requires Verify to pinpoint exactly the flipped record —
// wherever the byte lands: structure, a value, the digest or the
// predecessor link.
func TestChainTamperFlipByte(t *testing.T) {
	log, c := chainWorld(t, 30, 2)
	for _, i := range []int{0, 1, len(log.recs) / 2, len(log.recs) - 1} {
		for frac := 0; frac < 8; frac++ {
			off := len(log.recs[i]) * frac / 8
			orig := log.recs[i][off]
			log.recs[i][off] = orig ^ 0x20
			wantBadRecord(t, c.Verify(), i, fmt.Sprintf("flip record %d byte %d", i, off))
			_, err := VerifyLog(log)
			wantBadRecord(t, err, i, fmt.Sprintf("VerifyLog flip record %d byte %d", i, off))
			log.recs[i][off] = orig
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("chain did not survive un-tampering: %v", err)
	}
}

// TestChainTamperDrop drops one record — interior drops shift every
// later sequence number and are caught at the hole; a tail drop is
// caught by the live chain's record count.
func TestChainTamperDrop(t *testing.T) {
	log, c := chainWorld(t, 30, 3)
	orig := log.recs
	n := len(orig)

	for _, i := range []int{0, 1, n / 2, n - 2} {
		log.recs = append(append([][]byte(nil), orig[:i]...), orig[i+1:]...)
		wantBadRecord(t, c.Verify(), i, fmt.Sprintf("drop record %d", i))
		_, err := VerifyLog(log)
		wantBadRecord(t, err, i, fmt.Sprintf("VerifyLog drop record %d", i))
	}

	// Tail truncation: internally consistent, so only the live chain
	// (which knows its count) can see it — the error names the first
	// missing record.
	log.recs = orig[:n-1]
	err := c.Verify()
	wantBadRecord(t, err, n-1, "drop tail record")
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("tail drop error should say truncated: %v", err)
	}
	if _, err := VerifyLog(log); err != nil {
		t.Fatalf("VerifyLog cannot detect tail truncation, got: %v", err)
	}
	log.recs = orig
}

// TestChainTamperSwap swaps two records; the first swapped position
// must be named.
func TestChainTamperSwap(t *testing.T) {
	log, c := chainWorld(t, 30, 4)
	n := len(log.recs)
	for _, pair := range [][2]int{{0, 1}, {2, n - 1}, {n / 2, n/2 + 1}} {
		i, j := pair[0], pair[1]
		log.recs[i], log.recs[j] = log.recs[j], log.recs[i]
		wantBadRecord(t, c.Verify(), i, fmt.Sprintf("swap records %d,%d", i, j))
		_, err := VerifyLog(log)
		wantBadRecord(t, err, i, fmt.Sprintf("VerifyLog swap records %d,%d", i, j))
		log.recs[i], log.recs[j] = log.recs[j], log.recs[i]
	}
}

// TestChainTamperRewrite rewrites one record self-consistently — the
// payload changes, the digest is recomputed, the predecessor link kept —
// the strongest single-record forgery. The chain catches it at the
// first record whose predecessor link no longer holds (the successor),
// or at the count when the forged record is the last one.
func TestChainTamperRewrite(t *testing.T) {
	log, c := chainWorld(t, 30, 5)
	i := len(log.recs) / 2
	var r Record
	if err := json.Unmarshal(log.recs[i], &r); err != nil {
		t.Fatal(err)
	}
	r.User = "mallory"
	payload := appendPayload(nil, &r)
	r.Digest = digestHex(payload)
	log.recs[i] = appendRecord(nil, &r)
	wantBadRecord(t, c.Verify(), i+1, "self-consistent rewrite")
	_, err := VerifyLog(log)
	wantBadRecord(t, err, i+1, "VerifyLog self-consistent rewrite")
	if !strings.Contains(err.Error(), "predecessor link broken") {
		t.Fatalf("rewrite should break the successor's predecessor link: %v", err)
	}
}

// TestChainTamperNonCanonical re-encodes a record with different bytes
// but an identical decoded form (extra whitespace); the canonical-bytes
// check must reject it.
func TestChainTamperNonCanonical(t *testing.T) {
	log, c := chainWorld(t, 10, 6)
	i := 3
	log.recs[i] = append([]byte(" "), log.recs[i]...)
	err := c.Verify()
	// A leading space still decodes to the same record; depending on
	// where tampering lands the digest check may catch it first, but
	// for pure whitespace only the canonical-bytes check does.
	wantBadRecord(t, err, i, "non-canonical bytes")
	if !strings.Contains(err.Error(), "non-canonical") {
		t.Fatalf("want non-canonical error, got: %v", err)
	}
}

// TestChainTamperInsert inserts a duplicated record; sequence checking
// flags the insertion point.
func TestChainTamperInsert(t *testing.T) {
	log, c := chainWorld(t, 20, 7)
	i := 5
	ins := append([][]byte(nil), log.recs[:i]...)
	ins = append(ins, append([]byte(nil), log.recs[i]...))
	log.recs = append(ins, log.recs[i:]...)
	wantBadRecord(t, c.Verify(), i+1, "insert duplicate record")
}

// TestOpenChainResume closes a chain mid-history, reopens it over the
// same log, feeds the rest of the commits and verifies the whole chain.
func TestOpenChainResume(t *testing.T) {
	g, err := flowgen.Generate(flowgen.Spec{Cells: 20, Shape: flowgen.Chain, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := g.Populate()
	if err != nil {
		t.Fatal(err)
	}
	log := &tamperLog{}
	c1 := NewChain(log)
	// Feed only the first half by hand (the "before the restart" part).
	all := b.DB.All()
	half := len(all) / 2
	for _, in := range all[:half] {
		c1.OnCommit(in)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenChain(log)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != half {
		t.Fatalf("reopened chain has %d records, want %d", c2.Len(), half)
	}
	for _, in := range all[half:] {
		c2.OnCommit(in)
	}
	if err := c2.Verify(); err != nil {
		t.Fatalf("resumed chain failed verify: %v", err)
	}
	if c2.Len() != len(all) {
		t.Fatalf("resumed chain has %d records, want %d", c2.Len(), len(all))
	}

	// Reopening a tampered log must fail up front.
	log.recs[2][len(log.recs[2])/2] ^= 1
	if _, err := OpenChain(log); err == nil {
		t.Fatal("OpenChain accepted a tampered log")
	}
}

// TestChainAppendFailureLatched pins the error path: the observer
// cannot return an error, so the first append failure must surface on
// Sync/Verify/Close and stop further appends.
func TestChainAppendFailureLatched(t *testing.T) {
	g, err := flowgen.Generate(flowgen.Spec{Cells: 4, Shape: flowgen.Chain, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := g.Populate()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(&failLog{})
	b.DB.Observe(c)
	for _, call := range []struct {
		name string
		err  error
	}{{"Sync", c.Sync()}, {"Verify", c.Verify()}, {"Close", c.Close()}} {
		if call.err == nil || !strings.Contains(call.err.Error(), "disk full") {
			t.Fatalf("%s = %v, want latched disk full", call.name, call.err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("chain advanced past a failed append: %d records", c.Len())
	}
}

// TestChainExtraRecords pins Verify's rejection of records the chain
// never appended (a forged tail).
func TestChainExtraRecords(t *testing.T) {
	log, c := chainWorld(t, 10, 10)
	last := log.recs[len(log.recs)-1]
	var r Record
	if err := json.Unmarshal(last, &r); err != nil {
		t.Fatal(err)
	}
	forged := Record{Seq: r.Seq + 1, ID: "Cell:999", Type: "Cell", Prev: r.Digest}
	payload := appendPayload(nil, &forged)
	forged.Digest = digestHex(payload)
	log.recs = append(log.recs, appendRecord(nil, &forged))
	err := c.Verify()
	wantBadRecord(t, err, r.Seq+1, "forged tail record")
	if !strings.Contains(err.Error(), "not appended by this chain") {
		t.Fatalf("want forged-tail error, got: %v", err)
	}
}
