// Package schema implements the task schema of Sutton, Brockman and
// Director, "Design Management Using Dynamically Defined Flows" (DAC 1993),
// section 3.1.
//
// A task schema is a graph whose nodes are design entity types — both tools
// and data are entities — and whose arcs are dependencies. Each entity type
// has at most one functional dependency (the tool type that produces
// instances of it) and any number of data dependencies (its inputs). Data
// dependencies may be optional; optional dependencies are how cycles in the
// schema are broken (e.g. an Edited Netlist optionally depends on a
// Netlist). Subtyping separates alternative construction methods for the
// same conceptual entity (an Extracted Netlist and an Edited Netlist are
// both Netlists, built in different ways). Composite entities have only
// data dependencies and carry implicit compose/decompose functions.
//
// The schema serves two purposes: it states the construction rules from
// which dynamically defined flows (package flow) are built, and it is the
// data schema for the design-history database (package history).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an entity type as tool or data. The paper's central
// uniformity is that both kinds are entities and may appear anywhere in a
// flow; Kind exists so that catalogs can present tool- and data-oriented
// views (§3.4) and so encapsulations know what to execute.
type Kind int

const (
	// KindData marks an entity type whose instances are design data
	// (netlists, layouts, performance reports, ...).
	KindData Kind = iota
	// KindTool marks an entity type whose instances are executable tools
	// (simulators, extractors, editors, ...). Tool instances may themselves
	// be produced by flows (Fig. 2 of the paper).
	KindTool
)

// String returns "data" or "tool".
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindTool:
		return "tool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dep is a single dependency arc in the schema: the entity type named Type
// is required (or optionally used, if Optional) to construct the entity
// that carries the Dep. Role disambiguates multiple dependencies on the
// same type (for example a verifier that takes two Netlists, "golden" and
// "revised").
type Dep struct {
	// Type is the name of the entity type depended upon. It may name an
	// abstract supertype; any concrete subtype satisfies the dependency.
	Type string
	// Role optionally labels the dependency. Empty roles are legal as long
	// as (Type, Role) pairs remain unique within one entity type.
	Role string
	// Optional marks the dependency as not required for construction.
	// Optional data dependencies are the paper's mechanism for breaking
	// schema cycles (Fig. 1: Edited Netlist --dd?--> Netlist).
	Optional bool
}

// Key returns the identity of the dependency inside its owning entity
// type: the (type, role) pair.
func (d Dep) Key() string {
	if d.Role == "" {
		return d.Type
	}
	return d.Type + "/" + d.Role
}

// String renders the dependency as "Type", "Type/Role" or with a trailing
// "?" when optional.
func (d Dep) String() string {
	s := d.Key()
	if d.Optional {
		s += "?"
	}
	return s
}

// EntityType describes one node of the task schema.
type EntityType struct {
	// Name is the unique name of the type within its schema.
	Name string
	// Kind is data or tool.
	Kind Kind
	// Parent names the supertype, or is empty for a root type. Subtypes
	// represent alternative construction methods (§3.1).
	Parent string
	// Abstract types cannot be instantiated or executed directly; they
	// exist to be specialized into one of their subtypes.
	Abstract bool
	// Composite entities group other entities; they have only data
	// dependencies and implicit compose/decompose functions (§3.1).
	Composite bool
	// FuncDep is the functional dependency: the tool type that produces
	// this entity. An entity has at most one functional dependency; nil
	// means the entity is primitive (leaf) or composite.
	FuncDep *Dep
	// DataDeps are the data dependencies (inputs) of the construction.
	DataDeps []Dep
	// Doc is a human-readable description shown by catalogs.
	Doc string
}

// IsPrimitiveSource reports whether instances of the type can only enter
// the system from outside a flow (no functional dependency and not
// composite): for example an installed tool or imported data.
func (t *EntityType) IsPrimitiveSource() bool {
	return t.FuncDep == nil && !t.Composite
}

// HasTask reports whether the entity type defines a primitive task — that
// is, whether it can be constructed by running its functional-dependency
// tool over its data dependencies.
func (t *EntityType) HasTask() bool { return t.FuncDep != nil }

// RequiredDeps returns the non-optional data dependencies.
func (t *EntityType) RequiredDeps() []Dep {
	var out []Dep
	for _, d := range t.DataDeps {
		if !d.Optional {
			out = append(out, d)
		}
	}
	return out
}

// AllDeps returns the functional dependency (if any) followed by all data
// dependencies, in declaration order.
func (t *EntityType) AllDeps() []Dep {
	var out []Dep
	if t.FuncDep != nil {
		out = append(out, *t.FuncDep)
	}
	out = append(out, t.DataDeps...)
	return out
}

// DepByKey returns the dependency with the given (type[/role]) key and
// whether it exists. The functional dependency participates in the lookup.
func (t *EntityType) DepByKey(key string) (Dep, bool) {
	if t.FuncDep != nil && t.FuncDep.Key() == key {
		return *t.FuncDep, true
	}
	for _, d := range t.DataDeps {
		if d.Key() == key {
			return d, true
		}
	}
	return Dep{}, false
}

// String renders a one-line summary of the type.
func (t *EntityType) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", t.Kind, t.Name)
	if t.Parent != "" {
		fmt.Fprintf(&b, " : %s", t.Parent)
	}
	if t.Abstract {
		b.WriteString(" (abstract)")
	}
	if t.Composite {
		b.WriteString(" (composite)")
	}
	if t.FuncDep != nil {
		fmt.Fprintf(&b, " fd=%s", t.FuncDep)
	}
	if len(t.DataDeps) > 0 {
		keys := make([]string, len(t.DataDeps))
		for i, d := range t.DataDeps {
			keys[i] = d.String()
		}
		fmt.Fprintf(&b, " dd=[%s]", strings.Join(keys, ", "))
	}
	return b.String()
}

// Schema is a validated collection of entity types. The zero value is an
// empty schema ready to use.
type Schema struct {
	types map[string]*EntityType
	order []string // insertion order, for deterministic iteration
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{types: make(map[string]*EntityType)}
}

// Add inserts an entity type. It fails if the name is empty or already
// present, but performs no cross-type validation; call Validate once all
// types are added.
func (s *Schema) Add(t *EntityType) error {
	if t == nil {
		return fmt.Errorf("schema: nil entity type")
	}
	if t.Name == "" {
		return fmt.Errorf("schema: entity type with empty name")
	}
	if s.types == nil {
		s.types = make(map[string]*EntityType)
	}
	if _, ok := s.types[t.Name]; ok {
		return fmt.Errorf("schema: duplicate entity type %q", t.Name)
	}
	s.types[t.Name] = t
	s.order = append(s.order, t.Name)
	return nil
}

// MustAdd is Add but panics on error; it is intended for building fixture
// schemas in code.
func (s *Schema) MustAdd(t *EntityType) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// Type returns the entity type with the given name, or nil if absent.
func (s *Schema) Type(name string) *EntityType {
	if s.types == nil {
		return nil
	}
	return s.types[name]
}

// Has reports whether a type with the given name exists.
func (s *Schema) Has(name string) bool { return s.Type(name) != nil }

// Len returns the number of entity types.
func (s *Schema) Len() int { return len(s.order) }

// Names returns all type names in insertion order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Types returns all entity types in insertion order.
func (s *Schema) Types() []*EntityType {
	out := make([]*EntityType, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.types[n])
	}
	return out
}

// IsSubtypeOf reports whether type sub is the same as, or a (transitive)
// subtype of, type super. Unknown names are never subtypes.
func (s *Schema) IsSubtypeOf(sub, super string) bool {
	for cur := s.Type(sub); cur != nil; cur = s.Type(cur.Parent) {
		if cur.Name == super {
			return true
		}
		if cur.Parent == "" {
			return false
		}
	}
	return false
}

// Root returns the outermost supertype of the named type (possibly
// itself), or "" if the type is unknown.
func (s *Schema) Root(name string) string {
	cur := s.Type(name)
	if cur == nil {
		return ""
	}
	for cur.Parent != "" {
		next := s.Type(cur.Parent)
		if next == nil {
			return cur.Name
		}
		cur = next
	}
	return cur.Name
}

// Subtypes returns the names of the direct subtypes of the named type, in
// insertion order.
func (s *Schema) Subtypes(name string) []string {
	var out []string
	for _, n := range s.order {
		if s.types[n].Parent == name {
			out = append(out, n)
		}
	}
	return out
}

// ConcreteSubtypes returns the names of all non-abstract types assignable
// to the named type (including itself if concrete), in insertion order.
// These are the legal targets of a specialization operation (§3.2).
func (s *Schema) ConcreteSubtypes(name string) []string {
	var out []string
	for _, n := range s.order {
		if !s.types[n].Abstract && s.IsSubtypeOf(n, name) {
			out = append(out, n)
		}
	}
	return out
}

// Satisfies reports whether an instance of concrete type "have" can fill a
// dependency on type "want": have must be a subtype of want.
func (s *Schema) Satisfies(have, want string) bool {
	return s.IsSubtypeOf(have, want)
}

// Consumers returns, for the named type, every (consumer type, dependency)
// pair in which the consumer depends on the named type or on one of its
// supertypes. This drives upward ("in what can I use this?") expansion of
// flows and the forward-chaining queries of §4.2.
func (s *Schema) Consumers(name string) []Use {
	var out []Use
	for _, n := range s.order {
		t := s.types[n]
		for _, d := range t.AllDeps() {
			if s.IsSubtypeOf(name, d.Type) {
				out = append(out, Use{Consumer: n, Dep: d})
			}
		}
	}
	return out
}

// Use records that Consumer has dependency Dep, whose type is satisfied by
// some type of interest.
type Use struct {
	Consumer string
	Dep      Dep
}

// String renders the use as "Consumer <- dep".
func (u Use) String() string { return u.Consumer + " <- " + u.Dep.String() }

// ToolsProducing returns the names of every tool type that appears as a
// functional dependency of some concrete subtype of the named type — the
// tools that can produce that kind of entity. It drives tool-oriented
// browsing (§3.4).
func (s *Schema) ToolsProducing(name string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, sub := range s.ConcreteSubtypes(name) {
		t := s.types[sub]
		if t.FuncDep == nil {
			continue
		}
		if !seen[t.FuncDep.Type] {
			seen[t.FuncDep.Type] = true
			out = append(out, t.FuncDep.Type)
		}
	}
	return out
}

// ProductsOf returns the names of every entity type whose functional
// dependency is satisfied by the named tool type: everything the tool can
// produce. This is the goal list shown when a designer starts from a tool
// (§3.4).
func (s *Schema) ProductsOf(tool string) []string {
	var out []string
	for _, n := range s.order {
		t := s.types[n]
		if t.FuncDep != nil && s.IsSubtypeOf(tool, t.FuncDep.Type) {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks the whole schema for structural soundness:
//
//   - every Parent and every dependency target names an existing type;
//   - subtype chains are acyclic;
//   - functional dependencies point at tool types;
//   - composite entities have no functional dependency and at least one
//     data dependency;
//   - dependency (type, role) keys are unique within an entity type;
//   - every type is *grounded*: constructible by some finite flow. Loops
//     in the schema are legal (the paper breaks them with optional
//     dependencies or alternative subtypes), but a type whose every
//     construction path is circular can never be instantiated and is
//     rejected;
//   - abstract types have at least one concrete subtype.
//
// It returns all problems found, joined into one error, or nil.
func (s *Schema) Validate() error {
	var errs []string
	for _, n := range s.order {
		t := s.types[n]
		if t.Parent != "" && s.Type(t.Parent) == nil {
			errs = append(errs, fmt.Sprintf("%s: unknown parent %q", n, t.Parent))
		}
		if cyc := s.subtypeCycle(n); cyc != "" {
			errs = append(errs, fmt.Sprintf("%s: subtype cycle through %s", n, cyc))
		}
		if t.Composite {
			if t.FuncDep != nil {
				errs = append(errs, fmt.Sprintf("%s: composite entity has a functional dependency", n))
			}
			if len(t.DataDeps) == 0 {
				errs = append(errs, fmt.Sprintf("%s: composite entity has no components", n))
			}
		}
		if t.FuncDep != nil {
			ft := s.Type(t.FuncDep.Type)
			switch {
			case ft == nil:
				errs = append(errs, fmt.Sprintf("%s: unknown functional dependency %q", n, t.FuncDep.Type))
			case ft.Kind != KindTool:
				errs = append(errs, fmt.Sprintf("%s: functional dependency %q is not a tool", n, t.FuncDep.Type))
			}
			if t.FuncDep.Optional {
				errs = append(errs, fmt.Sprintf("%s: functional dependency cannot be optional", n))
			}
		}
		keys := make(map[string]bool)
		if t.FuncDep != nil {
			keys[t.FuncDep.Key()] = true
		}
		for _, d := range t.DataDeps {
			if s.Type(d.Type) == nil {
				errs = append(errs, fmt.Sprintf("%s: unknown data dependency %q", n, d.Type))
			}
			if keys[d.Key()] {
				errs = append(errs, fmt.Sprintf("%s: duplicate dependency key %q", n, d.Key()))
			}
			keys[d.Key()] = true
		}
		if t.Abstract && len(s.ConcreteSubtypes(n)) == 0 {
			errs = append(errs, fmt.Sprintf("%s: abstract type has no concrete subtype", n))
		}
	}
	for _, n := range s.ungrounded() {
		errs = append(errs, fmt.Sprintf("%s: not grounded (every construction path is circular)", n))
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("schema invalid:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// subtypeCycle returns a description of a parent-chain cycle reachable
// from name, or "" if none.
func (s *Schema) subtypeCycle(name string) string {
	seen := make(map[string]bool)
	cur := s.Type(name)
	for cur != nil {
		if seen[cur.Name] {
			return cur.Name
		}
		seen[cur.Name] = true
		if cur.Parent == "" {
			return ""
		}
		cur = s.Type(cur.Parent)
	}
	return ""
}

// ungrounded returns the names of entity types that cannot be constructed
// by any finite flow. A type is grounded when:
//
//   - it is a primitive source (installed tool or imported data); or
//   - it is abstract and at least one concrete subtype is grounded; or
//   - it is composite or has a task, and every *required* dependency names
//     a grounded type (a dependency on a supertype is grounded when the
//     supertype is, per the previous rule).
//
// Optional dependencies never count against groundedness: that is exactly
// the paper's rule that optional data dependencies break schema loops.
// The set of grounded types is the least fixed point of these rules.
func (s *Schema) ungrounded() []string {
	grounded := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range s.order {
			if grounded[n] {
				continue
			}
			t := s.types[n]
			// A grounded subtype grounds its supertype: a dependency on
			// the supertype can be satisfied by that subtype.
			ok := false
			for _, sub := range s.Subtypes(n) {
				if grounded[sub] {
					ok = true
					break
				}
			}
			if !ok && !t.Abstract {
				if t.IsPrimitiveSource() {
					ok = true
				} else {
					ok = true
					deps := t.RequiredDeps()
					if t.FuncDep != nil {
						deps = append(deps, *t.FuncDep)
					}
					for _, d := range deps {
						if !grounded[d.Type] {
							ok = false
							break
						}
					}
				}
			}
			if ok {
				grounded[n] = true
				changed = true
			}
		}
	}
	var out []string
	for _, n := range s.order {
		if !grounded[n] {
			out = append(out, n)
		}
	}
	return out
}

// Clone returns a deep copy of the schema. Mutating the clone (or types
// later added to it) does not affect the original.
func (s *Schema) Clone() *Schema {
	out := New()
	for _, n := range s.order {
		t := *s.types[n]
		if t.FuncDep != nil {
			fd := *t.FuncDep
			t.FuncDep = &fd
		}
		t.DataDeps = append([]Dep(nil), t.DataDeps...)
		out.MustAdd(&t)
	}
	return out
}
