package schema_test

import (
	"fmt"

	"repro/internal/schema"
)

// A minimal task schema in the DSL: an extractor producing netlists from
// layouts, with the loop broken by an optional dependency.
func ExampleParseString() {
	s, err := schema.ParseString(`
tool Extractor
tool Editor
data Layout
  fd Editor
  dd Layout optional
data Netlist
  fd Extractor
  dd Layout
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Type("Netlist"))
	for _, u := range s.Consumers("Layout") {
		fmt.Println(u)
	}
	// Output:
	// data Netlist fd=Extractor dd=[Layout]
	// Layout <- Layout?
	// Netlist <- Layout
}
