package schema

import (
	"strings"
	"testing"
)

func mustFig1(t *testing.T) *Schema {
	t.Helper()
	s := Fig1()
	if err := s.Validate(); err != nil {
		t.Fatalf("Fig1 schema invalid: %v", err)
	}
	return s
}

func TestAddAndLookup(t *testing.T) {
	s := New()
	if err := s.Add(&EntityType{Name: "Netlist"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s.Type("Netlist") == nil {
		t.Fatal("Type(Netlist) = nil after Add")
	}
	if s.Type("Layout") != nil {
		t.Fatal("Type(Layout) != nil for absent type")
	}
	if !s.Has("Netlist") || s.Has("Layout") {
		t.Fatal("Has wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestAddRejectsDuplicatesAndEmpty(t *testing.T) {
	s := New()
	if err := s.Add(&EntityType{Name: ""}); err == nil {
		t.Error("Add empty name: want error")
	}
	if err := s.Add(nil); err == nil {
		t.Error("Add nil: want error")
	}
	if err := s.Add(&EntityType{Name: "X"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add(&EntityType{Name: "X"}); err == nil {
		t.Error("Add duplicate: want error")
	}
}

func TestZeroValueSchemaUsable(t *testing.T) {
	var s Schema
	if err := s.Add(&EntityType{Name: "X"}); err != nil {
		t.Fatalf("Add on zero value: %v", err)
	}
	if s.Type("X") == nil {
		t.Fatal("lookup after Add on zero value failed")
	}
}

func TestIsSubtypeOf(t *testing.T) {
	s := mustFig1(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"ExtractedNetlist", "Netlist", true},
		{"EditedNetlist", "Netlist", true},
		{"Netlist", "Netlist", true},
		{"Netlist", "ExtractedNetlist", false},
		{"Layout", "Netlist", false},
		{"InstalledSimulator", "Simulator", true},
		{"NoSuchType", "Netlist", false},
		{"Netlist", "NoSuchType", false},
	}
	for _, c := range cases {
		if got := s.IsSubtypeOf(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtypeOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestRoot(t *testing.T) {
	s := mustFig1(t)
	if got := s.Root("ExtractedNetlist"); got != "Netlist" {
		t.Errorf("Root(ExtractedNetlist) = %q, want Netlist", got)
	}
	if got := s.Root("Netlist"); got != "Netlist" {
		t.Errorf("Root(Netlist) = %q, want Netlist", got)
	}
	if got := s.Root("NoSuchType"); got != "" {
		t.Errorf("Root(NoSuchType) = %q, want \"\"", got)
	}
}

func TestSubtypesAndConcreteSubtypes(t *testing.T) {
	s := mustFig1(t)
	subs := s.Subtypes("Netlist")
	if len(subs) != 2 || subs[0] != "ExtractedNetlist" || subs[1] != "EditedNetlist" {
		t.Errorf("Subtypes(Netlist) = %v", subs)
	}
	conc := s.ConcreteSubtypes("Netlist")
	if len(conc) != 2 {
		t.Errorf("ConcreteSubtypes(Netlist) = %v, want 2 entries", conc)
	}
	for _, n := range conc {
		if s.Type(n).Abstract {
			t.Errorf("ConcreteSubtypes returned abstract %s", n)
		}
	}
	// A concrete type with no subtypes is its own only concrete subtype.
	self := s.ConcreteSubtypes("Performance")
	if len(self) != 1 || self[0] != "Performance" {
		t.Errorf("ConcreteSubtypes(Performance) = %v", self)
	}
	// An abstract type is not among its own concrete subtypes.
	for _, n := range s.ConcreteSubtypes("Layout") {
		if n == "Layout" {
			t.Error("abstract Layout listed as concrete subtype of itself")
		}
	}
}

func TestConsumers(t *testing.T) {
	s := mustFig1(t)
	uses := s.Consumers("ExtractedNetlist")
	// ExtractedNetlist is a Netlist, so everything depending on Netlist
	// must appear: EditedNetlist, PlacedLayout, Circuit, Verification
	// (twice: reference and subject roles).
	byConsumer := map[string]int{}
	for _, u := range uses {
		byConsumer[u.Consumer]++
	}
	for _, want := range []string{"EditedNetlist", "PlacedLayout", "Circuit"} {
		if byConsumer[want] == 0 {
			t.Errorf("Consumers(ExtractedNetlist) missing %s (got %v)", want, uses)
		}
	}
	if byConsumer["Verification"] != 2 {
		t.Errorf("Verification should consume Netlist in 2 roles, got %d", byConsumer["Verification"])
	}
}

func TestConsumersOfTool(t *testing.T) {
	s := mustFig1(t)
	uses := s.Consumers("InstalledSimulator")
	found := false
	for _, u := range uses {
		if u.Consumer == "Performance" {
			found = true
		}
	}
	if !found {
		t.Errorf("Consumers(InstalledSimulator) should include Performance via fd; got %v", uses)
	}
}

func TestToolsProducing(t *testing.T) {
	s := mustFig1(t)
	tools := s.ToolsProducing("Netlist")
	want := map[string]bool{"Extractor": true, "NetlistEditor": true}
	if len(tools) != 2 {
		t.Fatalf("ToolsProducing(Netlist) = %v, want 2 tools", tools)
	}
	for _, tl := range tools {
		if !want[tl] {
			t.Errorf("unexpected tool %s", tl)
		}
	}
}

func TestProductsOf(t *testing.T) {
	s := mustFig1(t)
	prods := s.ProductsOf("Extractor")
	want := map[string]bool{"ExtractedNetlist": true, "ExtractionStatistics": true}
	if len(prods) != 2 {
		t.Fatalf("ProductsOf(Extractor) = %v, want 2", prods)
	}
	for _, p := range prods {
		if !want[p] {
			t.Errorf("unexpected product %s", p)
		}
	}
	// A subtype tool produces what its supertype's consumers require.
	prods = s.ProductsOf("InstalledSimulator")
	if len(prods) != 1 || prods[0] != "Performance" {
		t.Errorf("ProductsOf(InstalledSimulator) = %v, want [Performance]", prods)
	}
}

func TestDepKeyAndString(t *testing.T) {
	d := Dep{Type: "Netlist"}
	if d.Key() != "Netlist" || d.String() != "Netlist" {
		t.Errorf("plain dep: key=%q str=%q", d.Key(), d.String())
	}
	d = Dep{Type: "Netlist", Role: "golden", Optional: true}
	if d.Key() != "Netlist/golden" {
		t.Errorf("role dep key = %q", d.Key())
	}
	if d.String() != "Netlist/golden?" {
		t.Errorf("role dep string = %q", d.String())
	}
}

func TestEntityTypeHelpers(t *testing.T) {
	s := mustFig1(t)
	perf := s.Type("Performance")
	if !perf.HasTask() {
		t.Error("Performance should have a task")
	}
	if perf.IsPrimitiveSource() {
		t.Error("Performance is not a primitive source")
	}
	stim := s.Type("Stimuli")
	if stim.HasTask() || !stim.IsPrimitiveSource() {
		t.Error("Stimuli should be a primitive source without a task")
	}
	circ := s.Type("Circuit")
	if circ.HasTask() {
		t.Error("composite Circuit has no task")
	}
	if circ.IsPrimitiveSource() {
		t.Error("composite Circuit is not a primitive source")
	}
	en := s.Type("EditedNetlist")
	if got := len(en.RequiredDeps()); got != 0 {
		t.Errorf("EditedNetlist required deps = %d, want 0 (its dd is optional)", got)
	}
	if got := len(en.AllDeps()); got != 2 {
		t.Errorf("EditedNetlist all deps = %d, want 2 (fd + optional dd)", got)
	}
	if _, ok := perf.DepByKey("Circuit"); !ok {
		t.Error("DepByKey(Circuit) should find Performance's dd")
	}
	if _, ok := perf.DepByKey("Simulator"); !ok {
		t.Error("DepByKey(Simulator) should find Performance's fd")
	}
	if _, ok := perf.DepByKey("Nope"); ok {
		t.Error("DepByKey(Nope) should miss")
	}
}

func TestSatisfies(t *testing.T) {
	s := mustFig1(t)
	if !s.Satisfies("ExtractedNetlist", "Netlist") {
		t.Error("ExtractedNetlist should satisfy Netlist")
	}
	if s.Satisfies("Netlist", "ExtractedNetlist") {
		t.Error("Netlist must not satisfy ExtractedNetlist")
	}
}

func TestValidateCatchesUnknownTargets(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, FuncDep: &Dep{Type: "NoTool"}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "NoTool") {
		t.Errorf("want unknown-fd error, got %v", err)
	}

	s = New()
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, DataDeps: []Dep{{Type: "NoData"}}})
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "NoData") {
		t.Errorf("want unknown-dd error, got %v", err)
	}

	s = New()
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, Parent: "NoParent"})
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "NoParent") {
		t.Errorf("want unknown-parent error, got %v", err)
	}
}

func TestValidateCatchesFdOnNonTool(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "D", Kind: KindData})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, FuncDep: &Dep{Type: "D"}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "not a tool") {
		t.Errorf("want not-a-tool error, got %v", err)
	}
}

func TestValidateCatchesOptionalFd(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "T", Kind: KindTool})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, FuncDep: &Dep{Type: "T", Optional: true}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "cannot be optional") {
		t.Errorf("want optional-fd error, got %v", err)
	}
}

func TestValidateCatchesCompositeViolations(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "T", Kind: KindTool})
	s.MustAdd(&EntityType{Name: "C", Kind: KindData, Composite: true, FuncDep: &Dep{Type: "T"}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "composite") {
		t.Errorf("want composite-fd error, got %v", err)
	}

	s = New()
	s.MustAdd(&EntityType{Name: "C", Kind: KindData, Composite: true})
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "no components") {
		t.Errorf("want no-components error, got %v", err)
	}
}

func TestValidateCatchesDuplicateDepKeys(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "D", Kind: KindData})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData,
		DataDeps: []Dep{{Type: "D"}, {Type: "D"}}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate dependency key") {
		t.Errorf("want duplicate-key error, got %v", err)
	}
	// Distinct roles make the same type legal twice.
	s = New()
	s.MustAdd(&EntityType{Name: "D", Kind: KindData})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData,
		DataDeps: []Dep{{Type: "D", Role: "x"}, {Type: "D", Role: "y"}}})
	if err := s.Validate(); err != nil {
		t.Errorf("roles should disambiguate: %v", err)
	}
}

func TestValidateCatchesSubtypeCycle(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, Parent: "B"})
	s.MustAdd(&EntityType{Name: "B", Kind: KindData, Parent: "A"})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "subtype cycle") {
		t.Errorf("want subtype-cycle error, got %v", err)
	}
}

func TestValidateCatchesAbstractWithoutConcrete(t *testing.T) {
	s := New()
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, Abstract: true})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "no concrete subtype") {
		t.Errorf("want abstract error, got %v", err)
	}
}

func TestValidateGroundedness(t *testing.T) {
	// A requires B, B requires A: neither is constructible.
	s := New()
	s.MustAdd(&EntityType{Name: "T", Kind: KindTool})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, FuncDep: &Dep{Type: "T"}, DataDeps: []Dep{{Type: "B"}}})
	s.MustAdd(&EntityType{Name: "B", Kind: KindData, FuncDep: &Dep{Type: "T"}, DataDeps: []Dep{{Type: "A"}}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "not grounded") {
		t.Errorf("want groundedness error, got %v", err)
	}

	// Making one dependency optional breaks the loop (the paper's rule).
	s = New()
	s.MustAdd(&EntityType{Name: "T", Kind: KindTool})
	s.MustAdd(&EntityType{Name: "A", Kind: KindData, FuncDep: &Dep{Type: "T"}, DataDeps: []Dep{{Type: "B"}}})
	s.MustAdd(&EntityType{Name: "B", Kind: KindData, FuncDep: &Dep{Type: "T"}, DataDeps: []Dep{{Type: "A", Optional: true}}})
	if err := s.Validate(); err != nil {
		t.Errorf("optional dep should break loop: %v", err)
	}
}

func TestValidateGroundednessViaSubtype(t *testing.T) {
	// Layout <-> Netlist style loop escaped through an alternative
	// concrete subtype: legal.
	const src = `
tool T
data N abstract
data NFromL : N
  fd T
  dd L
data NByHand : N
  fd T
data L abstract
data LFromN : L
  fd T
  dd N
`
	if _, err := ParseString(src); err != nil {
		t.Errorf("subtype-escaped loop should validate: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mustFig1(t)
	c := s.Clone()
	if c.Len() != s.Len() {
		t.Fatalf("clone len %d != %d", c.Len(), s.Len())
	}
	// Mutate the clone's Performance deps; original must be unchanged.
	c.Type("Performance").DataDeps[0].Type = "Mutated"
	if s.Type("Performance").DataDeps[0].Type == "Mutated" {
		t.Error("Clone shares DataDeps backing array with original")
	}
	c.Type("Performance").FuncDep.Type = "Mutated"
	if s.Type("Performance").FuncDep.Type == "Mutated" {
		t.Error("Clone shares FuncDep pointer with original")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindTool.String() != "tool" {
		t.Error("Kind.String basic values wrong")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestEntityTypeString(t *testing.T) {
	s := mustFig1(t)
	str := s.Type("EditedNetlist").String()
	for _, want := range []string{"data", "EditedNetlist", ": Netlist", "fd=NetlistEditor", "Netlist?"} {
		if !strings.Contains(str, want) {
			t.Errorf("EntityType.String() = %q, missing %q", str, want)
		}
	}
	if !strings.Contains(s.Type("Circuit").String(), "(composite)") {
		t.Error("composite marker missing")
	}
	if !strings.Contains(s.Type("Netlist").String(), "(abstract)") {
		t.Error("abstract marker missing")
	}
}

func TestNamesAndTypesOrder(t *testing.T) {
	s := New()
	for _, n := range []string{"C", "A", "B"} {
		s.MustAdd(&EntityType{Name: n, Kind: KindData})
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "C" || names[1] != "A" || names[2] != "B" {
		t.Errorf("Names() = %v, want insertion order [C A B]", names)
	}
	types := s.Types()
	for i, ty := range types {
		if ty.Name != names[i] {
			t.Errorf("Types()[%d] = %s, want %s", i, ty.Name, names[i])
		}
	}
	// Returned slice is a copy.
	names[0] = "X"
	if s.Names()[0] != "C" {
		t.Error("Names() returned a live reference")
	}
}
