package schema

// This file provides the example task schema of the paper's Fig. 1 and the
// compiled-simulator extension of Fig. 2 as reusable fixtures. The figures
// in the DAC'93 paper are drawings; the reconstruction below includes every
// feature the text calls out:
//
//   - tools and data as uniform entities;
//   - Netlist subtyping (ExtractedNetlist vs EditedNetlist) separating
//     construction methods;
//   - a schema loop (EditedNetlist --dd--> Netlist) broken by marking the
//     dependency optional;
//   - the composite Circuit entity (only data dependencies);
//   - Stimuli as an options-as-entity example;
//   - multiple outputs of one task (ExtractedNetlist and
//     ExtractionStatistics share the Extractor/Layout construction);
//   - Fig. 2's tool-created-during-design: CompiledSimulator is a
//     Simulator subtype produced by SimulatorCompiler from a Netlist.

// Fig1Text is the paper's Fig. 1 schema in the DSL of this package.
const Fig1Text = `
# Reconstruction of Fig. 1 of Sutton/Brockman/Director, DAC 1993.
tool DeviceModelEditor -- edits device model libraries
tool NetlistEditor     -- interactive netlist editor
tool LayoutEditor      -- interactive layout editor
tool Extractor         -- extracts a netlist from a layout
tool Simulator abstract -- simulates a circuit
tool InstalledSimulator : Simulator -- an installed, ready-to-run simulator
tool Verifier          -- compares two netlists (LVS-style)
tool Plotter           -- renders performance plots
tool Placer            -- places a netlist to produce a layout

data DeviceModels -- device model library
  fd DeviceModelEditor
data Stimuli -- simulation stimuli; an options-as-entity example
data PlacementOptions -- placer arguments as an entity

data Netlist abstract -- any netlist, however constructed
data ExtractedNetlist : Netlist -- netlist extracted from a layout
  fd Extractor
  dd Layout
data EditedNetlist : Netlist -- netlist produced or revised by hand
  fd NetlistEditor
  dd Netlist optional

data Layout abstract -- any layout, however constructed
data EditedLayout : Layout -- layout produced or revised by hand
  fd LayoutEditor
  dd Layout optional
data PlacedLayout : Layout -- layout produced by the placer
  fd Placer
  dd Netlist
  dd PlacementOptions

composite Circuit -- a netlist grouped with its device models
  dd DeviceModels
  dd Netlist

data ExtractionStatistics -- second output of the extraction task
  fd Extractor
  dd Layout

data Performance -- simulated circuit performance
  fd Simulator
  dd Circuit
  dd Stimuli
data Verification -- result of comparing two netlists
  fd Verifier
  dd Netlist as reference
  dd Netlist as subject
data PerformancePlot -- plotted performance
  fd Plotter
  dd Performance
`

// Fig2Text extends Fig1Text with the Fig. 2 subgraph: a simulator compiled
// for a given netlist (the COSMOS example), i.e. a tool created during the
// design.
const Fig2Text = Fig1Text + `
tool SimulatorCompiler -- compiles a netlist into a dedicated simulator
tool CompiledSimulator : Simulator -- simulator generated for one netlist
  fd SimulatorCompiler
  dd Netlist
`

// FullText extends Fig2Text with the statistical-optimization subgraph
// discussed in §3.3: three optimizer tools sharing one calling convention,
// a simulator passed to them as a data input (tools-as-data), and
// optimized device models as a DeviceModels subtype with its own
// construction method.
const FullText = Fig2Text + `
tool Optimizer abstract -- statistical circuit optimizer
tool RandomOptimizer : Optimizer -- uniform random search
tool DescentOptimizer : Optimizer -- coordinate descent
tool AnnealOptimizer : Optimizer -- simulated annealing

data OptimizationGoal -- target critical path and budget, as an entity
data OptimizedModels : DeviceModels -- models tuned to meet a goal
  fd Optimizer
  dd Circuit
  dd Stimuli
  dd OptimizationGoal
  dd Simulator as engine
`

// Fig1 returns a fresh copy of the Fig. 1 schema. The schema is validated;
// construction failure is a programming error and panics.
func Fig1() *Schema { return MustParseString(Fig1Text) }

// Fig2 returns a fresh copy of the Fig. 1 schema extended with the Fig. 2
// compiled-simulator subgraph.
func Fig2() *Schema { return MustParseString(Fig2Text) }

// Full returns the complete example schema: Fig. 1, Fig. 2 and the
// optimization subgraph.
func Full() *Schema { return MustParseString(FullText) }
