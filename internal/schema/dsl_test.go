package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMinimal(t *testing.T) {
	s, err := ParseString(`
tool T
data D
  fd T
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	d := s.Type("D")
	if d.FuncDep == nil || d.FuncDep.Type != "T" {
		t.Errorf("D.FuncDep = %v", d.FuncDep)
	}
}

func TestParseFullFeatures(t *testing.T) {
	s, err := ParseString(`
# comment line
tool Editor -- edits
tool Checker
data Base abstract -- base type
data Sub : Base    -- subtype   # trailing comment
  fd Editor
  dd Base optional
data Report
  fd Checker
  dd Base as left
  dd Base as right
composite Pair
  dd Base
  dd Report
`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if s.Type("Editor").Doc != "edits" {
		t.Errorf("doc = %q", s.Type("Editor").Doc)
	}
	if !s.Type("Base").Abstract {
		t.Error("Base should be abstract")
	}
	if s.Type("Sub").Parent != "Base" {
		t.Errorf("Sub.Parent = %q", s.Type("Sub").Parent)
	}
	if !s.Type("Sub").DataDeps[0].Optional {
		t.Error("Sub dd should be optional")
	}
	rep := s.Type("Report")
	if len(rep.DataDeps) != 2 || rep.DataDeps[0].Role != "left" || rep.DataDeps[1].Role != "right" {
		t.Errorf("Report deps = %v", rep.DataDeps)
	}
	if !s.Type("Pair").Composite {
		t.Error("Pair should be composite")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown keyword", "frob X\n", "unknown keyword"},
		{"fd before entity", "fd T\n", "before any entity"},
		{"dd before entity", "dd T\n", "before any entity"},
		{"second fd", "tool T\ntool U\ndata D\n fd T\n fd U\n", "second functional"},
		{"fd arity", "tool T\ndata D\n fd T U\n", "exactly one"},
		{"dd no type", "data D\n dd\n", "wants a type"},
		{"entity no name", "data\n", "without a name"},
		{"colon no parent", "data D :\n", "without parent"},
		{"abstract composite", "composite C abstract\n", "cannot be abstract"},
		{"as no role", "data D\ndata E\n dd D as\n", "'as' without role"},
		{"bad dep token", "data D\ndata E\n dd D frob\n", "unexpected token"},
		{"bad entity token", "data D frob\n", "unexpected token"},
		{"validation runs", "data D\n fd Missing\n", "unknown functional"},
		{"duplicate entity", "data D\ndata D\n", "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("ParseString(%q) err = %v, want substring %q", c.src, err, c.want)
			}
		})
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := ParseString("tool T\n\nfrob X\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("want line 3 in error, got %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	s1 := Fig2()
	text := FormatString(s1)
	s2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse formatted schema: %v\n%s", err, text)
	}
	if FormatString(s2) != text {
		t.Error("Format/Parse/Format is not a fixed point")
	}
	if s2.Len() != s1.Len() {
		t.Fatalf("round trip changed type count: %d -> %d", s1.Len(), s2.Len())
	}
	for _, n := range s1.Names() {
		a, b := s1.Type(n), s2.Type(n)
		if a.String() != b.String() {
			t.Errorf("%s changed: %q -> %q", n, a, b)
		}
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseString should panic on bad input")
		}
	}()
	MustParseString("frob\n")
}

func TestFig1Valid(t *testing.T) {
	for _, s := range []*Schema{Fig1(), Fig2()} {
		if err := s.Validate(); err != nil {
			t.Errorf("fixture invalid: %v", err)
		}
	}
	if !Fig2().Has("CompiledSimulator") {
		t.Error("Fig2 missing CompiledSimulator")
	}
	if Fig1().Has("CompiledSimulator") {
		t.Error("Fig1 should not have CompiledSimulator")
	}
}

func TestFig1Structure(t *testing.T) {
	s := Fig1()
	// The loop-breaking optional dependency from the paper.
	en := s.Type("EditedNetlist")
	if len(en.DataDeps) != 1 || !en.DataDeps[0].Optional || en.DataDeps[0].Type != "Netlist" {
		t.Errorf("EditedNetlist dd = %v, want optional Netlist", en.DataDeps)
	}
	// The composite Circuit.
	c := s.Type("Circuit")
	if !c.Composite || c.FuncDep != nil || len(c.DataDeps) != 2 {
		t.Errorf("Circuit = %v", c)
	}
	// Multiple outputs of one task: same (fd, dd) construction.
	xn, xs := s.Type("ExtractedNetlist"), s.Type("ExtractionStatistics")
	if xn.FuncDep.Type != xs.FuncDep.Type {
		t.Error("ExtractedNetlist and ExtractionStatistics should share a tool")
	}
}

// Property: every concrete subtype listed for a type satisfies that type,
// and every consumer returned for a type accepts it.
func TestQuickSubtypeConsistency(t *testing.T) {
	s := Fig2()
	names := s.Names()
	f := func(i uint) bool {
		name := names[i%uint(len(names))]
		for _, sub := range s.ConcreteSubtypes(name) {
			if !s.Satisfies(sub, name) {
				return false
			}
		}
		for _, u := range s.Consumers(name) {
			if !s.IsSubtypeOf(name, u.Dep.Type) {
				return false
			}
			if _, ok := s.Type(u.Consumer).DepByKey(u.Dep.Key()); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Root is idempotent and IsSubtypeOf is reflexive/transitive up
// the chain.
func TestQuickRootIdempotent(t *testing.T) {
	s := Fig2()
	names := s.Names()
	f := func(i uint) bool {
		name := names[i%uint(len(names))]
		r := s.Root(name)
		return s.Root(r) == r && s.IsSubtypeOf(name, name) && s.IsSubtypeOf(name, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: format/parse round trip preserves each entity's rendering, for
// randomly generated flat schemas.
func TestQuickDSLRoundTrip(t *testing.T) {
	f := func(toolDocs []bool, optionals []bool) bool {
		s := New()
		s.MustAdd(&EntityType{Name: "T0", Kind: KindTool})
		for i, opt := range optionals {
			if i >= 8 {
				break
			}
			name := "D" + string(rune('0'+i))
			var deps []Dep
			if i > 0 {
				deps = append(deps, Dep{Type: "D0", Optional: opt, Role: "r"})
			}
			s.MustAdd(&EntityType{Name: name, Kind: KindData,
				FuncDep: &Dep{Type: "T0"}, DataDeps: deps})
		}
		_ = toolDocs
		if err := s.Validate(); err != nil {
			return true // not a round-trip concern
		}
		text := FormatString(s)
		s2, err := ParseString(text)
		if err != nil {
			return false
		}
		return FormatString(s2) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
