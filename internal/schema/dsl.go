package schema

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a small line-oriented text format for task schemas,
// so that methodology managers can maintain the schema (the paper's §3.3
// point that "only the task schema need be maintained") as a plain file.
//
// Grammar (one declaration per line, '#' starts a comment):
//
//	tool <Name> [: <Parent>] [abstract] [-- doc text]
//	data <Name> [: <Parent>] [abstract] [-- doc text]
//	composite <Name> [: <Parent>] [-- doc text]
//	  fd <ToolType>
//	  dd <Type> [as <role>] [optional]
//
// fd/dd lines attach to the most recently declared entity. Indentation is
// ignored. Example (a fragment of the paper's Fig. 1):
//
//	tool Simulator
//	data Netlist abstract
//	data ExtractedNetlist : Netlist
//	  fd Extractor
//	  dd Layout
//	data Performance
//	  fd Simulator
//	  dd Netlist
//	  dd Stimuli

// Parse reads a schema from r in the DSL described above and validates it.
func Parse(r io.Reader) (*Schema, error) {
	s := New()
	var cur *EntityType
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		doc := ""
		if i := strings.Index(line, "--"); i >= 0 {
			doc = strings.TrimSpace(line[i+2:])
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("schema dsl line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "tool", "data", "composite":
			t, err := parseEntityLine(fields, doc)
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := s.Add(t); err != nil {
				return nil, fail("%v", err)
			}
			cur = t
		case "fd":
			if cur == nil {
				return nil, fail("fd before any entity declaration")
			}
			if cur.FuncDep != nil {
				return nil, fail("%s: second functional dependency (at most one allowed)", cur.Name)
			}
			if len(fields) != 2 {
				return nil, fail("fd wants exactly one tool type")
			}
			cur.FuncDep = &Dep{Type: fields[1]}
		case "dd":
			if cur == nil {
				return nil, fail("dd before any entity declaration")
			}
			d, err := parseDepLine(fields)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.DataDeps = append(cur.DataDeps, d)
		default:
			return nil, fail("unknown keyword %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schema dsl: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseString is Parse over a string.
func ParseString(src string) (*Schema, error) {
	return Parse(strings.NewReader(src))
}

// MustParseString is ParseString but panics on error; for fixtures.
func MustParseString(src string) *Schema {
	s, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseEntityLine(fields []string, doc string) (*EntityType, error) {
	t := &EntityType{Doc: doc}
	switch fields[0] {
	case "tool":
		t.Kind = KindTool
	case "data":
		t.Kind = KindData
	case "composite":
		t.Kind = KindData
		t.Composite = true
	}
	rest := fields[1:]
	if len(rest) == 0 {
		return nil, fmt.Errorf("%s declaration without a name", fields[0])
	}
	t.Name = rest[0]
	rest = rest[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case ":":
			if len(rest) < 2 {
				return nil, fmt.Errorf("%s: ':' without parent name", t.Name)
			}
			t.Parent = rest[1]
			rest = rest[2:]
		case "abstract":
			if t.Composite {
				return nil, fmt.Errorf("%s: composite entities cannot be abstract", t.Name)
			}
			t.Abstract = true
			rest = rest[1:]
		default:
			return nil, fmt.Errorf("%s: unexpected token %q", t.Name, rest[0])
		}
	}
	return t, nil
}

func parseDepLine(fields []string) (Dep, error) {
	if len(fields) < 2 {
		return Dep{}, fmt.Errorf("dd wants a type name")
	}
	d := Dep{Type: fields[1]}
	rest := fields[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "as":
			if len(rest) < 2 {
				return Dep{}, fmt.Errorf("dd %s: 'as' without role", d.Type)
			}
			d.Role = rest[1]
			rest = rest[2:]
		case "optional":
			d.Optional = true
			rest = rest[1:]
		default:
			return Dep{}, fmt.Errorf("dd %s: unexpected token %q", d.Type, rest[0])
		}
	}
	return d, nil
}

// Format writes the schema back out in the DSL, one entity per block, in
// insertion order. Parse(Format(s)) reproduces s.
func Format(w io.Writer, s *Schema) error {
	bw := bufio.NewWriter(w)
	for i, t := range s.Types() {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		kw := "data"
		if t.Kind == KindTool {
			kw = "tool"
		}
		if t.Composite {
			kw = "composite"
		}
		fmt.Fprintf(bw, "%s %s", kw, t.Name)
		if t.Parent != "" {
			fmt.Fprintf(bw, " : %s", t.Parent)
		}
		if t.Abstract {
			fmt.Fprint(bw, " abstract")
		}
		if t.Doc != "" {
			fmt.Fprintf(bw, " -- %s", t.Doc)
		}
		fmt.Fprintln(bw)
		if t.FuncDep != nil {
			fmt.Fprintf(bw, "  fd %s\n", t.FuncDep.Type)
		}
		for _, d := range t.DataDeps {
			fmt.Fprintf(bw, "  dd %s", d.Type)
			if d.Role != "" {
				fmt.Fprintf(bw, " as %s", d.Role)
			}
			if d.Optional {
				fmt.Fprint(bw, " optional")
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// FormatString is Format into a string.
func FormatString(s *Schema) string {
	var b strings.Builder
	if err := Format(&b, s); err != nil {
		// strings.Builder writes cannot fail.
		panic(err)
	}
	return b.String()
}
