package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/encap"
)

func okEncap(t *testing.T) (*encap.Registry, *int) {
	t.Helper()
	runs := new(int)
	reg := encap.NewRegistry()
	reg.Register("Tool", encap.Func(func(r *encap.Request) (encap.Outputs, error) {
		*runs++
		return encap.Outputs{r.Goal: []byte("ok")}, nil
	}))
	return reg, runs
}

func request(goal string) *encap.Request {
	return &encap.Request{
		Goal:     goal,
		ToolType: "Tool",
		Tool:     []byte("tool-art"),
		Inputs:   map[string][]byte{"in": []byte("data")},
	}
}

func runOnce(t *testing.T, reg *encap.Registry, r *encap.Request) (encap.Outputs, error) {
	t.Helper()
	e, err := reg.Lookup(nil, "Tool")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	return e.Run(r)
}

// Lookup needs a schema only to walk parent chains; registering the
// concrete type directly means nil is fine — verify that assumption
// here so the other tests can rely on it.
func TestDirectLookupWithoutSchema(t *testing.T) {
	reg, _ := okEncap(t)
	if _, err := reg.Lookup(nil, "Tool"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
}

func TestTransientSiteRecoversAfterConfiguredRuns(t *testing.T) {
	reg, runs := okEncap(t)
	in := New(7, Config{TransientRate: 1, TransientRuns: 2})
	in.Instrument(reg)

	r := request("Goal")
	for attempt := 0; attempt < 2; attempt++ {
		_, err := runOnce(t, reg, r)
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != KindTransient {
			t.Fatalf("attempt %d: want transient injected error, got %v", attempt, err)
		}
		if !fe.Transient() {
			t.Fatalf("transient error must report Transient()=true")
		}
	}
	out, err := runOnce(t, reg, r)
	if err != nil {
		t.Fatalf("attempt 3: want recovery, got %v", err)
	}
	if string(out["Goal"]) != "ok" {
		t.Fatalf("recovered run output = %q", out["Goal"])
	}
	if *runs != 1 {
		t.Fatalf("real tool ran %d times, want 1", *runs)
	}
	c := in.Counters()
	if c.Calls != 3 || c.Transients != 2 {
		t.Fatalf("counters = %+v, want Calls=3 Transients=2", c)
	}
}

func TestPermanentFailsEveryAttemptAndIsNotTransient(t *testing.T) {
	reg, runs := okEncap(t)
	in := New(7, Config{PermanentRate: 1})
	in.Instrument(reg)

	for attempt := 0; attempt < 3; attempt++ {
		_, err := runOnce(t, reg, request("Goal"))
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != KindPermanent || fe.Transient() {
			t.Fatalf("attempt %d: want permanent non-transient error, got %v", attempt, err)
		}
	}
	if *runs != 0 {
		t.Fatalf("real tool ran %d times, want 0", *runs)
	}
}

func TestDecisionsAreSeedDeterministicAndSiteDependent(t *testing.T) {
	// With a 50% rate, which sites fail must depend only on (seed, site
	// content): replaying the same inputs reproduces the same pass/fail
	// pattern, and at least one site on each side exists.
	goals := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	pattern := func() []bool {
		reg, _ := okEncap(t)
		in := New(42, Config{PermanentRate: 0.5})
		in.Instrument(reg)
		out := make([]bool, len(goals))
		for i, g := range goals {
			_, err := runOnce(t, reg, request(g))
			out[i] = err != nil
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	failed, passed := 0, 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("site %q: run 1 failed=%v, run 2 failed=%v — not deterministic", goals[i], p1[i], p2[i])
		}
		if p1[i] {
			failed++
		} else {
			passed++
		}
	}
	if failed == 0 || passed == 0 {
		t.Fatalf("degenerate pattern (failed=%d passed=%d); pick another seed", failed, passed)
	}
}

func TestOverridePrecedenceGoalBeatsToolBeatsBase(t *testing.T) {
	reg, _ := okEncap(t)
	in := New(1, Config{}) // benign base
	in.SetToolConfig("Tool", Config{PermanentRate: 1})
	in.SetGoalConfig("Spared", Config{}) // goal override wins back
	in.Instrument(reg)

	if _, err := runOnce(t, reg, request("Doomed")); err == nil {
		t.Fatalf("tool override should fail Doomed")
	}
	if _, err := runOnce(t, reg, request("Spared")); err != nil {
		t.Fatalf("goal override should spare Spared, got %v", err)
	}
}

func TestHangHonoursContextCancellation(t *testing.T) {
	reg, runs := okEncap(t)
	in := New(3, Config{HangRate: 1, HangLimit: time.Hour})
	in.Instrument(reg)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r := request("Goal")
	r.Ctx = ctx
	start := time.Now()
	_, err := runOnce(t, reg, r)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from cancelled hang, got %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("hang outlived its context by too much: %v", e)
	}
	if *runs != 0 {
		t.Fatalf("real tool ran %d times during a hang, want 0", *runs)
	}
	if c := in.Counters(); c.Hangs != 1 {
		t.Fatalf("counters = %+v, want Hangs=1", c)
	}
}

func TestHangLimitExpiryReturnsHangError(t *testing.T) {
	reg, _ := okEncap(t)
	in := New(3, Config{HangRate: 1, HangLimit: 10 * time.Millisecond})
	in.Instrument(reg)

	_, err := runOnce(t, reg, request("Goal"))
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindHang {
		t.Fatalf("want hang error after limit, got %v", err)
	}
}

func TestLatencyDelaysButSucceeds(t *testing.T) {
	reg, runs := okEncap(t)
	in := New(3, Config{LatencyRate: 1, Latency: 15 * time.Millisecond})
	in.Instrument(reg)

	start := time.Now()
	if _, err := runOnce(t, reg, request("Goal")); err != nil {
		t.Fatalf("latency site must still succeed: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency not applied: run took %v", d)
	}
	if *runs != 1 {
		t.Fatalf("real tool ran %d times, want 1", *runs)
	}
	if c := in.Counters(); c.Latencies != 1 {
		t.Fatalf("counters = %+v, want Latencies=1", c)
	}
}
