// Package faults is a deterministic fault injector for tool
// encapsulations: it wraps every encapsulation in an encap.Registry
// (Registry.Wrap) and injects transient errors, permanent errors,
// latency spikes, and hung tools at seeded, repeatable sites.
//
// Determinism is the point. Whether a given tool run is afflicted is
// decided by hashing the run's identity — tool type, goal, tool
// artifact, and input artifacts — with the injector seed, never by
// shared RNG state, so the decision is independent of worker
// interleaving: the same seed over the same flow afflicts the same
// constructions on every run, under any scheduler or worker count.
// (Two constructions with byte-identical requests share a site and
// therefore a fate; outcomes are deterministic as a multiset.) That is
// what lets chaos tests assert exact outcomes: a transient site fails
// its first TransientRuns attempts and then succeeds, so a run with
// retries enabled must converge to the fault-free history.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/encap"
)

// Config sets the affliction rates for a set of tool runs. Rates are
// probabilities in [0, 1] evaluated independently per site; 1 afflicts
// every site.
type Config struct {
	// TransientRate is the fraction of sites that fail with a transient
	// (retryable) error for their first TransientRuns attempts and then
	// succeed.
	TransientRate float64
	// TransientRuns is how many attempts a transient site fails before
	// recovering (default 1).
	TransientRuns int
	// PermanentRate is the fraction of sites that fail every attempt
	// with a non-retryable error.
	PermanentRate float64
	// LatencyRate is the fraction of sites delayed by Latency before the
	// real tool runs.
	LatencyRate float64
	Latency     time.Duration
	// HangRate is the fraction of sites that hang — block until the
	// request context is cancelled or HangLimit (default 30s) expires —
	// instead of running the tool.
	HangRate  float64
	HangLimit time.Duration
}

// Kind classifies an injected fault.
type Kind int

const (
	KindTransient Kind = iota
	KindPermanent
	KindHang
)

func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	default:
		return "hang"
	}
}

// Error is the fault the injector returns. It implements the
// Transient() duck type the engine's retry classification probes, so
// injected transient failures are retried and injected permanent
// failures are not.
type Error struct {
	Kind Kind
	Tool string
	Goal string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure (%s producing %s)", e.Kind, e.Tool, e.Goal)
}

// Transient reports whether retrying can succeed.
func (e *Error) Transient() bool { return e.Kind == KindTransient }

// Counters tallies what the injector actually did, for chaos reports.
type Counters struct {
	Calls      int64 // tool runs seen
	Transients int64 // transient failures returned
	Permanents int64 // permanent failures returned
	Latencies  int64 // latency spikes applied
	Hangs      int64 // hangs entered
}

// Injector wraps encapsulations with seeded fault injection.
type Injector struct {
	seed   int64
	base   Config
	byTool map[string]Config
	byGoal map[string]Config
	mu     sync.Mutex
	tries  map[uint64]int // per-site attempt counts (transient recovery)
	callN  atomic.Int64
	transN atomic.Int64
	permN  atomic.Int64
	latN   atomic.Int64
	hangN  atomic.Int64
}

// New returns an injector applying base to every tool run not covered
// by a per-tool or per-goal override.
func New(seed int64, base Config) *Injector {
	return &Injector{
		seed:   seed,
		base:   base,
		byTool: make(map[string]Config),
		byGoal: make(map[string]Config),
		tries:  make(map[uint64]int),
	}
}

// SetToolConfig overrides the config for one concrete tool type.
func (in *Injector) SetToolConfig(toolType string, c Config) { in.byTool[toolType] = c }

// SetGoalConfig overrides the config for runs producing one goal type;
// it beats a per-tool override. Configure before Instrument-ed tools
// run — overrides are not synchronized.
func (in *Injector) SetGoalConfig(goal string, c Config) { in.byGoal[goal] = c }

// Counters snapshots what has been injected so far.
func (in *Injector) Counters() Counters {
	return Counters{
		Calls:      in.callN.Load(),
		Transients: in.transN.Load(),
		Permanents: in.permN.Load(),
		Latencies:  in.latN.Load(),
		Hangs:      in.hangN.Load(),
	}
}

// Instrument wraps every encapsulation registered so far; runs flowing
// through reg afterwards pass through the injector.
func (in *Injector) Instrument(reg *encap.Registry) {
	reg.Wrap(func(toolType string, e encap.Encapsulation) encap.Encapsulation {
		return encap.Func(func(r *encap.Request) (encap.Outputs, error) {
			return in.run(e, r)
		})
	})
}

func (in *Injector) configFor(r *encap.Request) Config {
	if c, ok := in.byGoal[r.Goal]; ok {
		return c
	}
	if c, ok := in.byTool[r.ToolType]; ok {
		return c
	}
	return in.base
}

func (in *Injector) run(e encap.Encapsulation, r *encap.Request) (encap.Outputs, error) {
	in.callN.Add(1)
	c := in.configFor(r)
	site := in.siteKey(r)

	if roll(site, "latency") < c.LatencyRate && c.Latency > 0 {
		in.latN.Add(1)
		t := time.NewTimer(c.Latency)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return nil, r.Context().Err()
		}
	}
	if roll(site, "hang") < c.HangRate {
		in.hangN.Add(1)
		limit := c.HangLimit
		if limit <= 0 {
			limit = 30 * time.Second
		}
		t := time.NewTimer(limit)
		select {
		case <-t.C:
			return nil, &Error{Kind: KindHang, Tool: r.ToolType, Goal: r.Goal}
		case <-r.Context().Done():
			t.Stop()
			return nil, r.Context().Err()
		}
	}
	if roll(site, "permanent") < c.PermanentRate {
		in.permN.Add(1)
		return nil, &Error{Kind: KindPermanent, Tool: r.ToolType, Goal: r.Goal}
	}
	if roll(site, "transient") < c.TransientRate {
		runs := c.TransientRuns
		if runs < 1 {
			runs = 1
		}
		in.mu.Lock()
		attempt := in.tries[site]
		in.tries[site] = attempt + 1
		in.mu.Unlock()
		if attempt < runs {
			in.transN.Add(1)
			return nil, &Error{Kind: KindTransient, Tool: r.ToolType, Goal: r.Goal}
		}
	}
	return e.Run(r)
}

// siteKey identifies one tool-run site by content: tool type, goal,
// tool artifact, and the inputs in key order — everything that defines
// the run, nothing that depends on scheduling.
func (in *Injector) siteKey(r *encap.Request) uint64 {
	h := hashInit(uint64(in.seed))
	h = hashString(h, r.ToolType)
	h = hashString(h, r.Goal)
	h = hashBytes(h, r.Tool)
	keys := make([]string, 0, len(r.Inputs))
	for k := range r.Inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h = hashString(h, k)
		h = hashBytes(h, r.Inputs[k])
	}
	return mix(h)
}

// roll maps (site, label) to a uniform float64 in [0, 1).
func roll(site uint64, label string) float64 {
	h := mix(hashString(hashInit(site), label))
	return float64(h>>11) / (1 << 53)
}

// FNV-1a with a murmur-style finalizer — cheap, allocation-free, and
// stable across runs and platforms.

func hashInit(seed uint64) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

func hashBytes(h uint64, b []byte) uint64 {
	h ^= 0xa5
	h *= 1099511628211
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	h ^= 0x5a
	h *= 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
