package hercules

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/exec"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/schema"
)

// schemaFormat renders the session's schema in the DSL.
func schemaFormat(s *Session) string { return schema.FormatString(s.Schema) }

// parseSchema parses a schema DSL text.
func parseSchema(text string) (*schema.Schema, error) { return schema.ParseString(text) }

// readerOf wraps bytes as a reader.
func readerOf(b []byte) io.Reader { return bytes.NewReader(b) }

// rebuildSession constructs an empty session around a specific schema
// (Load uses it so a saved session resumes under its saved methodology,
// even if the built-in schema has since evolved).
func rebuildSession(user string, sch *schema.Schema) *Session {
	db := history.NewDB(sch)
	store := datastore.NewStore()
	reg := encap.StandardRegistry()
	eng := exec.New(sch, db, store, reg)
	eng.SetUser(user)
	flows := flow.NewCatalog()
	archives := datastore.NewArchives()
	eng.SetArchiveSource(archives.Checkout)
	return &Session{
		Schema: sch, DB: db, Store: store, Registry: reg, Engine: eng,
		Flows: flows, Catalogs: catalog.New(sch, db, flows),
		Archives: archives,
		user:     user, Named: make(map[string]history.ID),
	}
}

// Session persistence: a session saves to a directory as five plain
// files — the schema in its DSL, the history as JSON, the datastore
// blobs, the flow catalog, and the bootstrap name table — and loads back
// into a fully working session. Everything else (indexes, catalogs,
// version trees) is derived state.
const (
	schemaFile = "schema.txt"
	dbFile     = "history.json"
	storeFile  = "store.json"
	flowsFile  = "flows.json"
	namedFile  = "named.json"
)

// Save writes the session's state into dir (created if needed).
func (s *Session) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hercules: save: %w", err)
	}
	write := func(name string, fill func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("hercules: save %s: %w", name, err)
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return fmt.Errorf("hercules: save %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write(schemaFile, func(w io.Writer) error {
		_, err := io.WriteString(w, schemaFormat(s))
		return err
	}); err != nil {
		return err
	}
	if err := write(dbFile, s.DB.DumpJSON); err != nil {
		return err
	}
	if err := write(storeFile, s.Store.DumpJSON); err != nil {
		return err
	}
	if err := write(flowsFile, s.dumpFlows); err != nil {
		return err
	}
	return write(namedFile, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(s.Named)
	})
}

// dumpFlows serializes the flow catalog as a JSON object of encoded
// flows.
func (s *Session) dumpFlows(w io.Writer) error {
	out := make(map[string]json.RawMessage)
	for _, name := range s.Flows.Names() {
		fl, err := s.Flows.Checkout(name)
		if err != nil {
			return err
		}
		var buf jsonBuffer
		if err := fl.Encode(&buf); err != nil {
			return err
		}
		out[name] = json.RawMessage(buf.data)
	}
	return json.NewEncoder(w).Encode(out)
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// Load reconstructs a session from a directory written by Save. The
// schema is reloaded from the saved DSL (so the session resumes against
// exactly the methodology it was saved under), the standard
// encapsulations are re-registered, and the history, datastore, flow
// catalog and name table are restored.
func Load(dir, user string) (*Session, error) {
	schemaText, err := os.ReadFile(filepath.Join(dir, schemaFile))
	if err != nil {
		return nil, fmt.Errorf("hercules: load: %w", err)
	}
	sch, err := parseSchema(string(schemaText))
	if err != nil {
		return nil, fmt.Errorf("hercules: load schema: %w", err)
	}
	// Build the session around the loaded schema.
	s := rebuildSession(user, sch)

	open := func(name string, fill func(r io.Reader) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("hercules: load %s: %w", name, err)
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return fmt.Errorf("hercules: load %s: %w", name, err)
		}
		return nil
	}
	if err := open(dbFile, s.DB.Restore); err != nil {
		return nil, err
	}
	if err := open(storeFile, s.Store.Restore); err != nil {
		return nil, err
	}
	if err := open(flowsFile, func(r io.Reader) error {
		var raw map[string]json.RawMessage
		if err := json.NewDecoder(r).Decode(&raw); err != nil {
			return err
		}
		for name, msg := range raw {
			fl, err := flow.Decode(readerOf(msg), s.Schema, s.DB)
			if err != nil {
				return fmt.Errorf("flow %q: %w", name, err)
			}
			if err := s.Flows.Install(name, fl); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := open(namedFile, func(r io.Reader) error {
		return json.NewDecoder(r).Decode(&s.Named)
	}); err != nil {
		return nil, err
	}
	// Every named instance must have survived the round trip.
	for key, id := range s.Named {
		if !s.DB.Has(id) {
			return nil, fmt.Errorf("hercules: load: named instance %s (%s) missing from history", key, id)
		}
	}
	return s, nil
}
