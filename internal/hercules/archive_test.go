package hercules

import (
	"strings"
	"testing"

	"repro/internal/cad/netlist"
	"repro/internal/history"
)

// TestFootnote5ArchiveSharing reproduces the paper's footnote 5: several
// design-history instances point to the same physical archive, carrying
// different version numbers in their meta-data only.
func TestFootnote5ArchiveSharing(t *testing.T) {
	s := newSession(t)
	base := netlist.Format(netlist.FullAdder())
	ed := s.Must("netEd.retouch")
	v1, err := s.CheckinRevision(history.Instance{Type: "EditedNetlist", Name: "adder v1",
		Tool: ed}, "adder.cct", base)
	if err != nil {
		t.Fatalf("CheckinRevision: %v", err)
	}
	v2, err := s.CheckinRevision(history.Instance{Type: "EditedNetlist", Name: "adder v2",
		Tool: ed, Inputs: []history.Input{{Key: "Netlist", Inst: v1}}}, "adder.cct", base+"# tweak\n")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := s.CheckinRevision(history.Instance{Type: "EditedNetlist", Name: "adder v3",
		Tool: ed, Inputs: []history.Input{{Key: "Netlist", Inst: v2}}}, "adder.cct", base+"# tweak\n# more\n")
	if err != nil {
		t.Fatal(err)
	}

	// One shared archive, three instances with distinct revisions.
	if got := s.Archives.Names(); len(got) != 1 || got[0] != "adder.cct" {
		t.Fatalf("Archives = %v", got)
	}
	for i, id := range []history.ID{v1, v2, v3} {
		in := s.DB.Get(id)
		if in.Archive != "adder.cct" || in.Revision != i+1 {
			t.Errorf("%s meta = %s r%d", id, in.Archive, in.Revision)
		}
		if in.Data != "" {
			t.Errorf("%s should carry no blob ref", id)
		}
	}

	// Each instance's artifact checks out its own revision.
	t1, err := s.ArtifactText(v1)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != base {
		t.Error("v1 text wrong")
	}
	t3, err := s.ArtifactText(v3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3, "# more") {
		t.Error("v3 text wrong")
	}

	// Archive-backed instances are usable in flows like any other: bind
	// v2 into a simulation.
	f := s.NewFlow()
	perf := f.MustAdd("Performance")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.ExpandDown(perf, false))
	simN, _ := f.Node(perf).Dep("fd")
	cctN, _ := f.Node(perf).Dep("Circuit")
	stimN, _ := f.Node(perf).Dep("Stimuli")
	must(f.ExpandDown(cctN, false))
	dmN, _ := f.Node(cctN).Dep("DeviceModels")
	netN, _ := f.Node(cctN).Dep("Netlist")
	must(f.ExpandDown(dmN, false))
	dmToolN, _ := f.Node(dmN).Dep("fd")
	must(f.Bind(netN, v2))
	must(f.Bind(simN, s.Must("sim")))
	must(f.Bind(stimN, s.Must("stim.exhaustive3")))
	must(f.Bind(dmToolN, s.Must("dmEd.default")))
	res, err := s.Run(f)
	if err != nil {
		t.Fatalf("flow over archive-backed netlist: %v", err)
	}
	pid, err := res.One(perf)
	if err != nil {
		t.Fatal(err)
	}
	// The performance derivation names the archive-backed instance.
	if got, _ := s.DB.Get(mustCircuit(t, s, pid)).InputFor("Netlist"); got != v2 {
		t.Errorf("circuit used %s, want %s", got, v2)
	}
	text, err := s.ArtifactText(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "performance fulladder") {
		t.Errorf("performance artifact = %.80q", text)
	}
}

// mustCircuit returns the Circuit instance used by a performance.
func mustCircuit(t *testing.T, s *Session, perf history.ID) history.ID {
	t.Helper()
	in := s.DB.Get(perf)
	cct, ok := in.InputFor("Circuit")
	if !ok {
		t.Fatalf("%s has no circuit input", perf)
	}
	return cct
}

// TestArchiveStorageSharing shows the storage effect: three revisions of
// a 100-line file cost far less than three copies.
func TestArchiveStorageSharing(t *testing.T) {
	s := newSession(t)
	base := netlist.Format(netlist.RippleAdder(4))
	lines := strings.Count(base, "\n")
	for i := 0; i < 3; i++ {
		_, err := s.CheckinRevision(history.Instance{Type: "EditedNetlist", Name: "r",
			Tool: s.Must("netEd.retouch")}, "big.cct", base+strings.Repeat("# rev\n", i))
		if err != nil {
			t.Fatal(err)
		}
	}
	storage := s.Archives.Open("big.cct").StorageLines()
	if storage >= 3*lines {
		t.Errorf("archive stores %d lines; three copies would be %d", storage, 3*lines)
	}
}

func TestArchivesCheckoutErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Archives.Checkout("nope", 1); err == nil {
		t.Error("unknown archive should fail")
	}
	if _, err := s.CheckinRevision(history.Instance{Type: "Nope"}, "a", "text"); err == nil {
		t.Error("unknown type should fail")
	}
}
