// Package hercules is the task-manager façade of the reproduction: the
// modified Hercules Task Management System of §4, part of the Odyssey
// CAD Framework. A Session bundles the task schema, the design-history
// database, the datastore, the encapsulation registry, the execution
// engine and the four catalogs, and exposes the operations of the
// Hercules user interface (Fig. 9): starting flows from any of the four
// catalogs, expanding and binding them in the task window, running tasks
// and sub-flows, browsing instances, chasing history (Fig. 10), querying
// with flows as templates, inspecting version trees and flow traces
// (Fig. 11), and retracing stale designs.
package hercules

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/datastore"
	"repro/internal/encap"
	"repro/internal/exec"
	"repro/internal/flow"
	"repro/internal/history"
	"repro/internal/memo"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Session is one designer's connection to the framework.
type Session struct {
	Schema   *schema.Schema
	DB       *history.DB
	Store    *datastore.Store
	Registry *encap.Registry
	Engine   *exec.Engine
	Flows    *flow.Catalog
	Catalogs *catalog.Catalogs
	// Archives holds RCS-style revision archives; instances whose
	// Archive/Revision meta-data is set share one physical archive, the
	// paper's footnote-5 arrangement.
	Archives *datastore.Archives
	user     string
	// Named holds well-known instances installed by Bootstrap, keyed by
	// short names ("extractor", "sim", "stim.exhaustive3", ...).
	Named map[string]history.ID
}

// NewSession creates a session over the full example schema with the
// standard tool encapsulations.
func NewSession(user string) *Session {
	return NewSessionStore(user, datastore.NewStore())
}

// NewSessionStore is NewSession over a caller-supplied datastore, so
// many sessions — one per designer — share one content-addressed store
// (re-importing the same artifacts is idempotent: same bytes, same
// refs). This is the multi-tenant arrangement of a flow service: each
// session keeps its own history database, while artifacts and
// result-cache blobs are shared across all of them.
func NewSessionStore(user string, store *datastore.Store) *Session {
	s := schema.Full()
	db := history.NewDB(s)
	reg := encap.StandardRegistry()
	eng := exec.New(s, db, store, reg)
	eng.SetUser(user)
	flows := flow.NewCatalog()
	archives := datastore.NewArchives()
	eng.SetArchiveSource(archives.Checkout)
	return &Session{
		Schema: s, DB: db, Store: store, Registry: reg, Engine: eng,
		Flows: flows, Catalogs: catalog.New(s, db, flows),
		Archives: archives,
		user:     user, Named: make(map[string]history.ID),
	}
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Import records a primitive instance (installed tool or imported data)
// with an artifact, returning its ID.
func (s *Session) Import(typeName, name, data string) (history.ID, error) {
	rec := history.Instance{Type: typeName, Name: name, User: s.user}
	if data != "" {
		rec.Data = s.Store.Put([]byte(data))
	}
	inst, err := s.DB.Record(rec)
	if err != nil {
		return "", err
	}
	return inst.ID, nil
}

// Bootstrap installs one instance of every standard tool, a few stimuli
// and option entities, and the stock plan-based flows. It is what a site
// administrator would do once per installation.
func (s *Session) Bootstrap() error {
	install := func(key, typ, name, data string) error {
		id, err := s.Import(typ, name, data)
		if err != nil {
			return fmt.Errorf("hercules: bootstrap %s: %w", key, err)
		}
		s.Named[key] = id
		return nil
	}
	type item struct{ key, typ, name, data string }
	items := []item{
		{"netEd.fulladder", "NetlistEditor", "netlist generator (full adder)", "generate fulladder"},
		{"netEd.ripple4", "NetlistEditor", "netlist generator (ripple-4)", "generate ripple 4"},
		{"netEd.retouch", "NetlistEditor", "netlist retoucher", "retouch rev"},
		{"layEd.fulladder", "LayoutEditor", "layout generator (full adder)", "generate fulladder"},
		{"layEd.retouch", "LayoutEditor", "layout retoucher", "retouch rev"},
		{"dmEd.default", "DeviceModelEditor", "model editor (cmos2u)", "default"},
		{"dmEd.fast", "DeviceModelEditor", "model editor (cmos1u)", "fast"},
		{"extractor", "Extractor", "mextra", ""},
		{"sim", "InstalledSimulator", "hspice", ""},
		{"verifier", "Verifier", "lvs", ""},
		{"plotter", "Plotter", "xplot", ""},
		{"placer", "Placer", "row placer", ""},
		{"compiler", "SimulatorCompiler", "cosmos cc", ""},
		{"opt.random", "RandomOptimizer", "random optimizer", ""},
		{"opt.descent", "DescentOptimizer", "descent optimizer", ""},
		{"opt.anneal", "AnnealOptimizer", "annealing optimizer", ""},
		{"stim.exhaustive3", "Stimuli", "exhaustive 3-input vectors",
			"stimuli exh3\ninterval 10000000\ninputs a b cin\nvector 000\nvector 001\nvector 010\nvector 011\nvector 100\nvector 101\nvector 110\nvector 111\n"},
		{"stim.step", "Stimuli", "step on in",
			"stimuli step\ninterval 10000000\ninputs in\nvector 0\nvector 1\n"},
		{"popts.default", "PlacementOptions", "default placement options", "seed=1 passes=2"},
		{"ogoal.default", "OptimizationGoal", "default speed goal", "target=2000 budget=12 seed=1"},
	}
	for _, it := range items {
		if err := install(it.key, it.typ, it.name, it.data); err != nil {
			return err
		}
	}
	return s.installPlans()
}

// installPlans populates the flow catalog with the stock plans used by
// the plan-based approach.
func (s *Session) installPlans() error {
	// simulate-netlist: Performance <- (Simulator, Circuit(DeviceModels,
	// EditedNetlist), Stimuli), leaves unbound.
	f := flow.New(s.Schema, s.DB)
	perf := f.MustAdd("Performance")
	if err := f.ExpandDown(perf, false); err != nil {
		return err
	}
	cct, _ := f.Node(perf).Dep("Circuit")
	if err := f.ExpandDown(cct, false); err != nil {
		return err
	}
	net, _ := f.Node(cct).Dep("Netlist")
	if err := f.Specialize(net, "EditedNetlist"); err != nil {
		return err
	}
	if err := f.ExpandDown(net, false); err != nil {
		return err
	}
	dm, _ := f.Node(cct).Dep("DeviceModels")
	if err := f.ExpandDown(dm, false); err != nil {
		return err
	}
	if err := s.Flows.Install("simulate-netlist", f); err != nil {
		return err
	}

	// synthesize-layout: PlacedLayout <- (Placer, Netlist, Options).
	f2 := flow.New(s.Schema, s.DB)
	lay := f2.MustAdd("PlacedLayout")
	if err := f2.ExpandDown(lay, false); err != nil {
		return err
	}
	net2, _ := f2.Node(lay).Dep("Netlist")
	if err := f2.Specialize(net2, "EditedNetlist"); err != nil {
		return err
	}
	if err := f2.ExpandDown(net2, false); err != nil {
		return err
	}
	if err := s.Flows.Install("synthesize-layout", f2); err != nil {
		return err
	}

	// verify-views: Verification of an extracted netlist against a
	// reference netlist.
	f3 := flow.New(s.Schema, s.DB)
	ver := f3.MustAdd("Verification")
	if err := f3.ExpandDown(ver, false); err != nil {
		return err
	}
	subj, _ := f3.Node(ver).Dep("Netlist/subject")
	if err := f3.Specialize(subj, "ExtractedNetlist"); err != nil {
		return err
	}
	if err := f3.ExpandDown(subj, false); err != nil {
		return err
	}
	return s.Flows.Install("verify-views", f3)
}

// NewFlow opens an empty flow in the task window.
func (s *Session) NewFlow() *flow.Flow { return flow.New(s.Schema, s.DB) }

// Run executes a whole flow. The returned Result carries the run's
// scheduling statistics in Result.Stats (per-task wall time, worker
// occupancy, critical path, queue waits).
func (s *Session) Run(f *flow.Flow) (*exec.Result, error) { return s.Engine.RunFlow(f) }

// SetWorkers sets the engine's worker-pool size (the "machines" of
// Fig. 6).
func (s *Session) SetWorkers(n int) { s.Engine.SetWorkers(n) }

// SetScheduler selects the engine's scheduling discipline:
// exec.Dataflow (default) or the exec.Barrier baseline.
func (s *Session) SetScheduler(sched exec.Scheduler) { s.Engine.SetScheduler(sched) }

// SetMaxCombos caps the per-node fan-out over multi-instance bindings.
func (s *Session) SetMaxCombos(n int) { s.Engine.SetMaxCombos(n) }

// SetTaskDelay adds a simulated dispatch latency to every tool run.
func (s *Session) SetTaskDelay(d time.Duration) { s.Engine.SetTaskDelay(d) }

// SetRetryPolicy installs per-unit retry with exponential backoff and
// full jitter (see exec.RetryPolicy).
func (s *Session) SetRetryPolicy(p exec.RetryPolicy) { s.Engine.SetRetryPolicy(p) }

// SetFailurePolicy selects exec.FailFast (default) or
// exec.ContinueOnError graceful degradation.
func (s *Session) SetFailurePolicy(p exec.FailurePolicy) { s.Engine.SetFailurePolicy(p) }

// SetTaskTimeout bounds every tool-run attempt; 0 disables the bound.
func (s *Session) SetTaskTimeout(d time.Duration) { s.Engine.SetTaskTimeout(d) }

// SetMemo installs a derivation-keyed result cache (see internal/memo)
// consulted before each unit of work is dispatched and fed from every
// committed result; nil removes it. A warm cache lets a re-run mint its
// history instances without executing any tool.
func (s *Session) SetMemo(c *memo.Cache) { s.Engine.SetMemo(c) }

// SetTracer installs a run-event sink (see internal/trace) receiving
// one structured event per lifecycle transition of every run; nil
// removes it.
func (s *Session) SetTracer(sink trace.Sink) { s.Engine.SetTracer(sink) }

// RunContext executes a whole flow under a context; cancelling it stops
// the run and returns the partial result.
func (s *Session) RunContext(ctx context.Context, f *flow.Flow) (*exec.Result, error) {
	return s.Engine.RunFlowContext(ctx, f)
}

// RunOptions executes a whole flow with per-run overrides (see
// exec.RunOptions) — the entry point a multi-tenant service uses to run
// this session's flow on a shared engine: pass the session's DB so the
// run commits here while executing over the service engine's pool.
func (s *Session) RunOptions(ctx context.Context, f *flow.Flow, opts *exec.RunOptions) (*exec.Result, error) {
	return s.Engine.RunFlowOptions(ctx, f, opts)
}

// RunNode executes the sub-flow rooted at a node.
func (s *Session) RunNode(f *flow.Flow, id flow.NodeID) (*exec.Result, error) {
	return s.Engine.RunNode(f, id)
}

// Browse lists instances matching a filter — the entity-instance browser
// of Fig. 9.
func (s *Session) Browse(f history.Filter) []*history.Instance { return s.DB.Select(f) }

// Annotate attaches a name and comment to an instance.
func (s *Session) Annotate(id history.ID, name, comment string) error {
	return s.DB.Annotate(id, name, comment)
}

// History renders the derivation history of an instance (the History
// pop-up of Fig. 10).
func (s *Session) History(id history.ID) (string, error) {
	d, err := s.DB.Backchain(id, -1)
	if err != nil {
		return "", err
	}
	return d.Render(s.DB), nil
}

// UseDependencies returns the instances that depend on the given one
// (the Use Dependencies browser option of Fig. 9).
func (s *Session) UseDependencies(id history.ID) ([]history.ID, error) {
	d, err := s.DB.Forwardchain(id, -1)
	if err != nil {
		return nil, err
	}
	var out []history.ID
	for _, n := range d.Nodes {
		if n != id {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Query matches a flow, used as a template, against the design history
// (§4.2).
func (s *Session) Query(f *flow.Flow) ([]history.Match, error) {
	return s.DB.MatchPattern(f.AsPattern())
}

// VersionTree renders the classic version tree of an instance's lineage
// (Fig. 11a).
func (s *Session) VersionTree(id history.ID) (string, error) {
	t, err := s.DB.VersionTree(id)
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// FlowTrace renders the flow trace of an instance's lineage — the
// version tree enriched with the tools used (Fig. 11b).
func (s *Session) FlowTrace(id history.ID) (string, error) {
	t, err := s.DB.FlowTrace(id)
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// OutOfDate reports whether an instance's derivation used superseded
// data.
func (s *Session) OutOfDate(id history.ID) (bool, error) { return s.DB.OutOfDate(id) }

// Retrace re-runs the stale parts of an instance's derivation.
func (s *Session) Retrace(id history.ID) (*exec.RetraceResult, error) {
	return s.Engine.Retrace(id)
}

// ArtifactText returns an instance's artifact as text. Blob-backed
// instances read from the content-addressed store; archive-backed ones
// (Archive/Revision set) check their revision out of the shared archive.
func (s *Session) ArtifactText(id history.ID) (string, error) {
	in := s.DB.Get(id)
	if in == nil {
		return "", fmt.Errorf("hercules: no instance %s", id)
	}
	if in.Data != "" {
		b, ok := s.Store.Get(in.Data)
		if !ok {
			return "", fmt.Errorf("hercules: artifact of %s missing from datastore", id)
		}
		return string(b), nil
	}
	if in.Archive != "" {
		return s.Archives.Checkout(in.Archive, in.Revision)
	}
	return "", nil
}

// CheckinRevision checks text into the named shared archive and records
// an instance whose meta-data points at (archive, revision) — the
// paper's footnote-5 physical sharing: many instances, one archive,
// different version numbers in the meta-data. The caller supplies the
// record's type and derivation (tool, inputs); Archive, Revision, Data
// and User are filled in here.
func (s *Session) CheckinRevision(rec history.Instance, archive, text string) (history.ID, error) {
	rev := s.Archives.Open(archive).Checkin(text)
	rec.User = s.user
	rec.Archive = archive
	rec.Revision = rev
	rec.Data = ""
	inst, err := s.DB.Record(rec)
	if err != nil {
		return "", err
	}
	return inst.ID, nil
}

// Must returns a bootstrap-installed instance by its short name,
// panicking when absent — examples and benches use it for brevity.
func (s *Session) Must(key string) history.ID {
	id, ok := s.Named[key]
	if !ok {
		keys := make([]string, 0, len(s.Named))
		for k := range s.Named {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		panic(fmt.Sprintf("hercules: no bootstrap instance %q (have: %s)", key, strings.Join(keys, ", ")))
	}
	return id
}
