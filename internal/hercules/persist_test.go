package hercules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newSession(t)
	perf, _ := runSimulatePlan(t, s)
	if err := s.Annotate(perf, "saved run", "before shutdown"); err != nil {
		t.Fatal(err)
	}

	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, f := range []string{"schema.txt", "history.json", "store.json", "flows.json", "named.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	s2, err := Load(dir, "after-restart")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Same instance count, same artifact content, same derivation.
	if s2.DB.Len() != s.DB.Len() {
		t.Fatalf("instances: %d -> %d", s.DB.Len(), s2.DB.Len())
	}
	in := s2.DB.Get(perf)
	if in == nil || in.Name != "saved run" {
		t.Fatalf("annotated instance lost: %v", in)
	}
	a, err := s.ArtifactText(perf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.ArtifactText(perf)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("artifact changed across save/load")
	}
	// History queries still work.
	h, err := s2.History(perf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h, "Circuit:") {
		t.Errorf("history after load:\n%s", h)
	}
	// The flow catalog survived, with usable plans.
	if got := s2.Flows.Names(); len(got) != 3 {
		t.Errorf("plans after load = %v", got)
	}
	f, err := s2.Catalogs.StartFromPlan("simulate-netlist")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("restored plan invalid: %v", err)
	}
	// Named instances resolve, and new work can proceed where the old
	// session left off (IDs continue, not restart).
	f2 := s2.NewFlow()
	n := f2.MustAdd("EditedNetlist")
	if err := f2.ExpandDown(n, false); err != nil {
		t.Fatal(err)
	}
	tn, _ := f2.Node(n).Dep("fd")
	if err := f2.Bind(tn, s2.Must("netEd.fulladder")); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run(f2)
	if err != nil {
		t.Fatalf("run after load: %v", err)
	}
	id, err := res.One(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.DB.Has(id) {
		t.Errorf("new instance %s collides with a pre-save ID", id)
	}
	// Retrace still works against restored derivations.
	ood, err := s2.OutOfDate(perf)
	if err != nil {
		t.Fatal(err)
	}
	_ = ood
}

func TestLoadRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	s := newSession(t)
	runSimulatePlan(t, s)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Corrupt the store: flip a blob's content so the hash mismatches.
	storePath := filepath.Join(dir, "store.json")
	data, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	// JSON base64 blobs: replace a character inside a value.
	broken := strings.Replace(string(data), "\"c3RpbXVsaSBl", "\"c3RpbXVsaSBF", 1)
	if broken == string(data) {
		// Fall back: truncate the file, which must also fail.
		broken = string(data[:len(data)/2])
	}
	if err := os.WriteFile(storePath, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "x"); err == nil {
		t.Error("Load with corrupted store should fail")
	}

	// Missing file.
	if err := os.Remove(filepath.Join(dir, "history.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "x"); err == nil {
		t.Error("Load with missing history should fail")
	}
	if _, err := Load(t.TempDir(), "x"); err == nil {
		t.Error("Load from empty dir should fail")
	}
}

func TestRestoreValidatesDerivations(t *testing.T) {
	// A history dump referencing a missing tool is rejected.
	s := newSession(t)
	bad := `[
	 {"ID":"Stimuli:1","Type":"Stimuli","User":"x","Created":"2026-01-01T00:00:00Z"},
	 {"ID":"Performance:2","Type":"Performance","User":"x","Created":"2026-01-01T00:00:01Z",
	  "Tool":"InstalledSimulator:99",
	  "Inputs":[{"Key":"Circuit","Inst":"Stimuli:1"},{"Key":"Stimuli","Inst":"Stimuli:1"}]}
	]`
	db := history.NewDB(s.Schema)
	if err := db.Restore(strings.NewReader(bad)); err == nil {
		t.Error("restore with dangling tool should fail")
	}
	if db.Len() != 0 {
		t.Error("failed restore must leave the database empty")
	}
	// Restore into non-empty DB refused.
	if err := s.DB.Restore(strings.NewReader("[]")); err == nil {
		t.Error("restore into populated database should fail")
	}
}
