package hercules

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/history"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession("sutton")
	if err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return s
}

// runSimulatePlan checks out the stock plan, binds its leaves and runs
// it, returning the performance instance.
func runSimulatePlan(t *testing.T, s *Session) (history.ID, *flow.Flow) {
	t.Helper()
	f, err := s.Catalogs.StartFromPlan("simulate-netlist")
	if err != nil {
		t.Fatalf("StartFromPlan: %v", err)
	}
	// Find the leaves by type.
	bind := func(typeName, key string) {
		t.Helper()
		for _, id := range f.Leaves() {
			if f.Node(id).Type == typeName && !f.Node(id).IsBound() {
				if err := f.Bind(id, s.Must(key)); err != nil {
					t.Fatalf("bind %s: %v", typeName, err)
				}
				return
			}
		}
		t.Fatalf("no unbound %s leaf", typeName)
	}
	bind("Simulator", "sim")
	bind("Stimuli", "stim.exhaustive3")
	bind("NetlistEditor", "netEd.fulladder")
	bind("DeviceModelEditor", "dmEd.default")
	res, err := s.Run(f)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var perf history.ID
	for _, root := range f.Roots() {
		ids := res.InstancesOf(root)
		if len(ids) == 1 && s.DB.Get(ids[0]).Type == "Performance" {
			perf = ids[0]
		}
	}
	if perf == "" {
		t.Fatal("no performance produced")
	}
	return perf, f
}

func TestBootstrapInstallsEverything(t *testing.T) {
	s := newSession(t)
	if len(s.Named) < 18 {
		t.Errorf("Named has %d entries", len(s.Named))
	}
	if got := s.Flows.Names(); len(got) != 3 {
		t.Errorf("plans = %v", got)
	}
	// Tool catalog shows installed instances.
	tools := s.Catalogs.Tools()
	found := false
	for _, te := range tools {
		if te.Type == "Extractor" && len(te.Instances) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("extractor missing from tool catalog")
	}
	// Entity catalog covers the whole schema.
	if got := len(s.Catalogs.Entities()); got != s.Schema.Len() {
		t.Errorf("entity catalog has %d of %d", got, s.Schema.Len())
	}
}

func TestPlanBasedApproach(t *testing.T) {
	s := newSession(t)
	perf, _ := runSimulatePlan(t, s)
	text, err := s.ArtifactText(perf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "performance fulladder") {
		t.Errorf("artifact = %.100q", text)
	}
}

func TestGoalBasedApproach(t *testing.T) {
	s := newSession(t)
	f, goal, err := s.Catalogs.StartFromGoal("ExtractionStatistics")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(goal, false); err != nil {
		t.Fatal(err)
	}
	layN, _ := f.Node(goal).Dep("Layout")
	extrN, _ := f.Node(goal).Dep("fd")
	if err := f.Specialize(layN, "EditedLayout"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(layN, false); err != nil {
		t.Fatal(err)
	}
	layToolN, _ := f.Node(layN).Dep("fd")
	if err := f.Bind(extrN, s.Must("extractor")); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(layToolN, s.Must("layEd.fulladder")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.One(goal)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := s.ArtifactText(id)
	if !strings.Contains(text, "extraction statistics") {
		t.Errorf("artifact = %.80q", text)
	}
}

func TestToolBasedApproach(t *testing.T) {
	s := newSession(t)
	f, toolN, err := s.Catalogs.StartFromTool(s.Must("extractor"))
	if err != nil {
		t.Fatal(err)
	}
	goals := s.Catalogs.GoalsFor("Extractor")
	if len(goals) != 2 {
		t.Fatalf("GoalsFor(Extractor) = %v", goals)
	}
	// Grow upward: the extractor as fd of an extracted netlist.
	netN, err := f.ExpandUp(toolN, "ExtractedNetlist", "fd")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(netN, false); err != nil {
		t.Fatal(err)
	}
	layN, _ := f.Node(netN).Dep("Layout")
	if err := f.Specialize(layN, "EditedLayout"); err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(layN, false); err != nil {
		t.Fatal(err)
	}
	layToolN, _ := f.Node(layN).Dep("fd")
	if err := f.Bind(layToolN, s.Must("layEd.fulladder")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(f); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDataBasedApproach(t *testing.T) {
	s := newSession(t)
	// Start from the stimuli data instance.
	f, dataN, err := s.Catalogs.StartFromData(s.Must("stim.exhaustive3"))
	if err != nil {
		t.Fatal(err)
	}
	uses := s.Catalogs.UsesFor("Stimuli")
	if len(uses) == 0 {
		t.Fatal("stimuli should have consumers")
	}
	perfN, err := f.ExpandUp(dataN, "Performance", "Stimuli")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ExpandDown(perfN, false); err != nil {
		t.Fatal(err)
	}
	// The rest mirrors the plan; just check structure here.
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Node(perfN).DepKeys()) != 3 {
		t.Errorf("perf deps = %v", f.Node(perfN).DepKeys())
	}
}

func TestApproachErrors(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Catalogs.StartFromGoal("Nope"); err == nil {
		t.Error("unknown goal should fail")
	}
	if _, _, err := s.Catalogs.StartFromTool("Nope:1"); err == nil {
		t.Error("unknown tool instance should fail")
	}
	if _, _, err := s.Catalogs.StartFromTool(s.Must("stim.exhaustive3")); err == nil {
		t.Error("data instance as tool should fail")
	}
	if _, _, err := s.Catalogs.StartFromData(s.Must("sim")); err == nil {
		t.Error("tool instance as data should fail")
	}
	if _, err := s.Catalogs.StartFromPlan("nope"); err == nil {
		t.Error("unknown plan should fail")
	}
}

func TestHistoryAndUseDependencies(t *testing.T) {
	s := newSession(t)
	perf, _ := runSimulatePlan(t, s)
	h, err := s.History(perf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Performance:", "Circuit:", "EditedNetlist:"} {
		if !strings.Contains(h, want) {
			t.Errorf("History missing %q:\n%s", want, h)
		}
	}
	// Forward from the netlist editor tool reaches the performance.
	deps, err := s.UseDependencies(s.Must("netEd.fulladder"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		if d == perf {
			found = true
		}
	}
	if !found {
		t.Errorf("UseDependencies should reach %s: %v", perf, deps)
	}
	if _, err := s.History("Nope:1"); err == nil {
		t.Error("History of missing instance should fail")
	}
	if _, err := s.UseDependencies("Nope:1"); err == nil {
		t.Error("UseDependencies of missing instance should fail")
	}
}

func TestQueryWithFlowTemplate(t *testing.T) {
	s := newSession(t)
	perf, _ := runSimulatePlan(t, s)
	// "find the simulations performed with these stimuli": two-node
	// template with the stimuli bound.
	f := s.NewFlow()
	perfN := f.MustAdd("Performance")
	stimN := f.MustAdd("Stimuli")
	if err := f.Connect(perfN, "Stimuli", stimN); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(stimN, s.Must("stim.exhaustive3")); err != nil {
		t.Fatal(err)
	}
	matches, err := s.Query(f)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	for _, m := range matches {
		for ref, inst := range m {
			if strings.HasPrefix(string(inst), "Performance") && inst != perf {
				t.Errorf("match %s = %s, want %s", ref, inst, perf)
			}
		}
	}
}

func TestVersionTreeAndFlowTraceRendering(t *testing.T) {
	s := newSession(t)
	perf, f := runSimulatePlan(t, s)
	_ = f
	// Create two successive netlist versions via the retouch editor.
	nets := s.DB.InstancesOf("EditedNetlist")
	if len(nets) != 1 {
		t.Fatalf("netlists = %d", len(nets))
	}
	base := nets[0]
	ed := s.Must("netEd.retouch")
	data, _ := s.ArtifactText(base.ID)
	v2, err := s.DB.Record(history.Instance{Type: "EditedNetlist", User: s.User(),
		Tool:   ed,
		Inputs: []history.Input{{Key: "Netlist", Inst: base.ID}},
		Data:   s.Store.Put([]byte(data + "# v2\n"))})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := s.VersionTree(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vt, string(base.ID)) || !strings.Contains(vt, string(v2.ID)) {
		t.Errorf("version tree:\n%s", vt)
	}
	ft, err := s.FlowTrace(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ft, "[via "+string(ed)+"]") {
		t.Errorf("flow trace should name the editor:\n%s", ft)
	}
	// Consistency: the performance is now stale; retrace fixes it.
	ood, err := s.OutOfDate(perf)
	if err != nil {
		t.Fatal(err)
	}
	if !ood {
		t.Fatal("performance should be stale")
	}
	rr, err := s.Retrace(perf)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Fresh {
		t.Fatal("retrace should have rebuilt")
	}
	ood, err = s.OutOfDate(rr.NewTarget(perf))
	if err != nil {
		t.Fatal(err)
	}
	if ood {
		t.Error("retraced performance still stale")
	}
}

func TestBrowseAndAnnotate(t *testing.T) {
	s := newSession(t)
	perf, _ := runSimulatePlan(t, s)
	if err := s.Annotate(perf, "CMOS Full adder", "Oct 20 1992 run"); err != nil {
		t.Fatal(err)
	}
	got := s.Browse(history.Filter{Keyword: "full adder"})
	found := false
	for _, in := range got {
		if in.ID == perf {
			found = true
		}
	}
	if !found {
		t.Errorf("browse by keyword missed the annotated instance: %v", got)
	}
	// Data catalog excludes tools.
	for _, in := range s.Catalogs.Data(history.Filter{}) {
		if s.Schema.Type(in.Type).Kind.String() == "tool" {
			t.Errorf("data catalog lists tool %s", in.ID)
		}
	}
}

func TestArtifactText(t *testing.T) {
	s := newSession(t)
	if _, err := s.ArtifactText("Nope:1"); err == nil {
		t.Error("missing instance should fail")
	}
	// Instance without artifact yields empty text.
	text, err := s.ArtifactText(s.Must("extractor"))
	if err != nil || text != "" {
		t.Errorf("artifactless tool: %q, %v", text, err)
	}
}

func TestMustPanicsOnUnknownKey(t *testing.T) {
	s := newSession(t)
	defer func() {
		if recover() == nil {
			t.Error("Must should panic")
		}
	}()
	s.Must("no-such-key")
}

func TestImportValidates(t *testing.T) {
	s := newSession(t)
	if _, err := s.Import("Nope", "x", ""); err == nil {
		t.Error("unknown type should fail")
	}
}
