package scenario

import (
	"strings"
	"testing"
)

// validDoc is the smallest scenario that passes Decode.
const validDoc = `{
  "name": "t",
  "schema": ["tool T -- t", "data D -- d", "  fd T"],
  "tools": [{"type": "T"}],
  "imports": [{"key": "tool", "type": "T"}],
  "flow": [
    {"op": "add", "node": "d", "type": "D"},
    {"op": "expand", "node": "d"},
    {"op": "bind", "node": "d.fd", "to": ["tool"]}
  ]
}`

func decodeValid(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Decode([]byte(validDoc))
	if err != nil {
		t.Fatalf("decoding the valid base scenario: %v", err)
	}
	return sc
}

func TestDecodeValid(t *testing.T) {
	sc := decodeValid(t)
	if sc.Name != "t" || len(sc.Flow) != 3 {
		t.Fatalf("decoded scenario = %+v", sc)
	}
	if !sc.WantGolden() {
		t.Fatal("default scenario must want a golden trace")
	}
	if got := sc.SchemaText(); !strings.Contains(got, "tool T -- t\ndata D -- d") {
		t.Fatalf("SchemaText = %q", got)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"name": "t", "scheme": []}`))
	if err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("unknown field must name the field, got: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := Decode([]byte(validDoc + `{"name": "second"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing document must be rejected, got: %v", err)
	}
}

func TestDecodeRejectsMalformedJSON(t *testing.T) {
	for _, doc := range []string{"", "{", `{"name"`, "[]", `"x"`, "null"} {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("Decode(%q) succeeded, want an error", doc)
		}
	}
}

func TestWantGolden(t *testing.T) {
	sc := decodeValid(t)
	if !sc.WantGolden() {
		t.Fatal("default: want golden")
	}
	f := false
	sc.Expect.Golden = &f
	if sc.WantGolden() {
		t.Fatal("explicit false must disable the golden")
	}
	sc.Expect.Golden = nil
	sc.Cancel = &CancelSpec{AfterCommits: 1}
	if sc.WantGolden() {
		t.Fatal("cancel scenarios default to goldenless")
	}
	tr := true
	sc.Expect.Golden = &tr
	if !sc.WantGolden() {
		t.Fatal("explicit true wins over Cancel for WantGolden")
	}
}

// TestValidate walks every validation error path; each case mutates the
// valid base and must fail with a message containing the fragment.
func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"unsafe name", func(s *Scenario) { s.Name = "a b" }, "filename-safe slug"},
		{"unknown base", func(s *Scenario) { s.Base = "exotic" }, `unknown base "exotic"`},
		{"standard with schema", func(s *Scenario) { s.Base = "standard"; s.Tools = nil }, "remove the schema field"},
		{"standard with tools", func(s *Scenario) { s.Base = "standard"; s.Schema = nil }, "remove the tools field"},
		{"missing schema", func(s *Scenario) { s.Schema = nil }, "missing schema"},
		{"tool missing type", func(s *Scenario) { s.Tools = []ToolSpec{{}} }, "tools[0]: missing type"},
		{"tool unknown behavior", func(s *Scenario) { s.Tools[0].Behavior = "explode" }, `unknown behavior "explode"`},
		{"tool negative sleep", func(s *Scenario) { s.Tools[0].SleepMs = -1 }, "negative sleepMs"},
		{"import missing key", func(s *Scenario) { s.Imports[0].Key = "" }, "imports[0]: missing key"},
		{"import missing type", func(s *Scenario) { s.Imports[0].Type = "" }, "missing type"},
		{"duplicate import key", func(s *Scenario) {
			s.Imports = append(s.Imports, ImportSpec{Key: "tool", Type: "T"})
		}, `duplicate key "tool"`},
		{"missing flow", func(s *Scenario) { s.Flow = nil }, "missing flow ops"},
		{"unknown op", func(s *Scenario) { s.Flow[0].Op = "discombobulate" }, `unknown op "discombobulate"`},
		{"add incomplete", func(s *Scenario) { s.Flow[0].Type = "" }, "needs node and type"},
		{"expand incomplete", func(s *Scenario) { s.Flow[1].Node = "" }, "needs node"},
		{"specialize incomplete", func(s *Scenario) {
			s.Flow = append(s.Flow, Op{Op: "specialize", Node: "d"})
		}, "needs node and type"},
		{"connect incomplete", func(s *Scenario) {
			s.Flow = append(s.Flow, Op{Op: "connect", Parent: "d"})
		}, "needs parent, key and child"},
		{"expand-up incomplete", func(s *Scenario) {
			s.Flow = append(s.Flow, Op{Op: "expand-up", Node: "d", Consumer: "C"})
		}, "needs node, consumer, key and as"},
		{"bind without node", func(s *Scenario) { s.Flow[2].Node = "" }, "needs node"},
		{"bind without to", func(s *Scenario) { s.Flow[2].To = nil }, "at least one import key"},
		{"bind unknown import", func(s *Scenario) { s.Flow[2].To = []string{"ghost"} },
			`unknown import key "ghost" (have: tool)`},
		{"alias incomplete", func(s *Scenario) {
			s.Flow = append(s.Flow, Op{Op: "alias", Node: "d"})
		}, "needs node and as"},
		{"workers below one", func(s *Scenario) { s.Run.Workers = []int{0} }, "below 1"},
		{"unknown scheduler", func(s *Scenario) { s.Run.Schedulers = []string{"fair"} }, `unknown scheduler "fair"`},
		{"unknown policy", func(s *Scenario) { s.Run.Policy = "panic" }, `unknown policy "panic"`},
		{"retry zero attempts", func(s *Scenario) { s.Run.Retry = &RetrySpec{} }, "attempts must be"},
		{"negative timeout", func(s *Scenario) { s.Run.TimeoutMs = -1 }, "negative timeoutMs"},
		{"negative maxCombos", func(s *Scenario) { s.Run.MaxCombos = -1 }, "negative timeoutMs/maxCombos"},
		{"fault base rate out of range", func(s *Scenario) {
			s.Faults = &FaultPlan{Base: &FaultConfig{TransientRate: 1.5}}
		}, "faults.base: transientRate 1.5 outside [0, 1]"},
		{"fault byTool rate out of range", func(s *Scenario) {
			s.Faults = &FaultPlan{ByTool: map[string]FaultConfig{"T": {HangRate: -0.5}}}
		}, "faults.byTool[T]"},
		{"fault byGoal negative count", func(s *Scenario) {
			s.Faults = &FaultPlan{ByGoal: map[string]FaultConfig{"D": {TransientRuns: -1}}}
		}, "faults.byGoal[D]: negative duration/count"},
		{"cancel zero commits", func(s *Scenario) {
			f := false
			s.Cancel = &CancelSpec{}
			s.Expect.Golden = &f
			s.Expect.Error = "cancel"
		}, "afterCommits must be"},
		{"cancel with golden", func(s *Scenario) {
			tr := true
			s.Cancel = &CancelSpec{AfterCommits: 1}
			s.Expect.Golden = &tr
			s.Expect.Error = "cancel"
		}, "nondeterministic"},
		{"cancel without expected error", func(s *Scenario) {
			s.Cancel = &CancelSpec{AfterCommits: 1}
		}, "must expect an error"},
		{"warm rerun zero hits", func(s *Scenario) { s.Expect.WarmRerun = &WarmExpect{} }, "hits must be"},
		{"artifact missing node", func(s *Scenario) {
			s.Expect.Artifacts = []ArtifactExpect{{}}
		}, "expect.artifacts[0]: missing node"},
		{"killResume goldenless", func(s *Scenario) {
			f := false
			s.Expect.Golden = &f
			s.Expect.KillResume = true
		}, "needs a deterministic trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := decodeValid(t)
			tc.mutate(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("Validate passed, want an error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "scenario ") {
				t.Fatalf("Validate error %q does not name the scenario", err)
			}
		})
	}
}

func TestValidateUnnamedPrefix(t *testing.T) {
	sc := &Scenario{}
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), "<unnamed>") {
		t.Fatalf("unnamed scenario error = %v, want the <unnamed> placeholder", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Fatal("Load of a missing file must fail")
	}
	if _, err := LoadDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.json scenarios") {
		t.Fatalf("LoadDir of an empty dir = %v, want the no-scenarios error", err)
	}
}
