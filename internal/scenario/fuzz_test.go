package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioDecode holds Decode to its contract on arbitrary bytes:
// it never panics, malformed input fails with an error (never a
// half-validated scenario), and anything it accepts survives a
// marshal → decode round trip. Seeded with the real conformance corpus
// so the fuzzer starts from deep valid structure.
func FuzzScenarioDecode(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range corpus {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, seed := range []string{
		"", "{", "null", "[]", `{"name": "t"}`,
		`{"name": "t", "schema": ["x"], "flow": [{"op": "add"}]}`,
		`{"name": "t", "cancel": {"afterCommits": 0}}`,
		validDoc + "{}",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			if sc != nil {
				t.Fatalf("Decode returned both a scenario and an error: %v", err)
			}
			return
		}
		// Decode validates, so the invariants of a valid scenario hold.
		if sc.Name == "" {
			t.Fatal("Decode accepted a scenario without a name")
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		// Round trip: the struct's own JSON form must decode and validate
		// again (field tags and DisallowUnknownFields agree).
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-decode of a valid scenario failed: %v\ndoc: %s", err, out)
		}
	})
}
