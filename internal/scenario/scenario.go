// Package scenario defines the declarative workload format of the
// conformance harness (internal/harness): one JSON document that
// declares everything a flow run needs — the task schema (in the
// schema DSL), generic tool encapsulations, primitive instances, the
// flow-construction operations, run options, an optional fault plan
// for the seeded injector (internal/faults), an optional mid-run
// cancellation point, and the expected outcome (golden masked trace,
// final-state assertions, error/skip sets, memo-hit contracts,
// kill-and-resume checks).
//
// The paper's claim is that dynamically defined flows can manage *any*
// design methodology; this package makes methodologies data. A scenario
// is to the engine what a flow is to a tool set: a declarative object
// that can be stored, diffed, queried — and replayed bit-for-bit. The
// corpus under testdata/scenarios/ spans methodology domains well
// beyond the paper's CAD examples (logic synthesis, PCB layout, FPGA
// place-and-route, documentation pipelines) plus adversarial shapes
// (diamond-heavy graphs, fault chaos, cancel-mid-run, warm reruns,
// WAL kill-and-resume).
//
// This package is pure data: decoding and validation only. Building a
// world from a scenario and executing it is internal/harness's job.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Scenario is one declarative workload.
type Scenario struct {
	// Name identifies the scenario; the golden trace lives at
	// golden/<Name>.jsonl next to the scenario file. Must be a
	// filename-safe slug.
	Name string `json:"name"`
	// Doc says what methodology the scenario models and what engine
	// behaviour it pins.
	Doc string `json:"doc,omitempty"`

	// Base selects the execution world: "" (the default) builds a fresh
	// schema from Schema and registers the generic tools of Tools;
	// "standard" uses the paper's full example schema (schema.Full) with
	// the standard encapsulations (encap.StandardRegistry) — the base
	// the hand-coded examples/ ran against.
	Base string `json:"base,omitempty"`
	// Generate, when set, replaces the declarative world entirely: the
	// harness builds a seeded synthetic DAG through internal/flowgen
	// (schema, tools, imports and flow all generated) and runs it
	// through the same differential sweep. Mutually exclusive with
	// Base/Schema/Tools/Imports/Flow — the generator owns the world.
	// Generated scenarios default to golden-free differential mode:
	// no golden file, but masked traces and history dumps must still be
	// byte-identical across every (scheduler, workers) sweep cell.
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Schema is the task schema in the line-oriented schema DSL
	// (internal/schema), one declaration per element. Ignored (and
	// rejected) when Base is "standard".
	Schema []string `json:"schema,omitempty"`
	// Tools declares generic encapsulations for the schema's tool types.
	Tools []ToolSpec `json:"tools,omitempty"`
	// Imports records primitive instances (installed tools, imported
	// data) before the flow runs; flow "bind" ops reference them by key.
	Imports []ImportSpec `json:"imports,omitempty"`
	// Flow is the sequence of flow-construction operations (§3.2/§4.1:
	// add, expand, specialize, connect, expand-up, bind, alias).
	Flow []Op `json:"flow"`
	// Run sets the execution options and the differential sweep.
	Run RunSpec `json:"run,omitempty"`
	// Faults, when set, instruments the registry with the seeded
	// deterministic injector before any run.
	Faults *FaultPlan `json:"faults,omitempty"`
	// Cancel, when set, cancels the run context after the given number
	// of committed units — the cancel-mid-run probe. Cancellation makes
	// the tail of the trace nondeterministic, so a cancelling scenario
	// must set "expect.golden": false.
	Cancel *CancelSpec `json:"cancel,omitempty"`
	// Expect describes the required outcome.
	Expect Expect `json:"expect,omitempty"`
}

// GenerateSpec mirrors flowgen.Spec: a seeded synthetic DAG in one of
// the generator's topology families.
type GenerateSpec struct {
	// Cells is the number of task nodes (the flow has about twice as
	// many: one bound tool node per cell).
	Cells int `json:"cells"`
	// Shape is "layered" (default), "diamond", "fanout" or "chain".
	Shape string `json:"shape,omitempty"`
	// Seed drives every random choice; equal specs generate equal
	// worlds, byte for byte.
	Seed int64 `json:"seed,omitempty"`
	// FanIn caps data inputs per cell (1..4, default 3).
	FanIn int `json:"fanIn,omitempty"`
	// Payload is the artifact size each cell produces (default 256).
	Payload int `json:"payload,omitempty"`
	// Levels is the layer count for the layered shape.
	Levels int `json:"levels,omitempty"`
}

// ToolSpec declares one generic tool encapsulation. The harness
// registers a deterministic behaviour for the tool type: the artifact
// it produces embeds the goal type, the tool's own data, and a content
// hash of every input, so downstream artifacts change whenever any
// transitive input changes (which is what makes memo and staleness
// scenarios meaningful).
type ToolSpec struct {
	// Type is the schema tool type the behaviour is registered under
	// (subtype fallback applies, as with real encapsulations).
	Type string `json:"type"`
	// Behavior selects the generic behaviour: "transform" (default)
	// derives outputs from the inputs; "fail" returns a permanent error
	// on every run (for skip-set scenarios that need a failing tool
	// without a fault plan).
	Behavior string `json:"behavior,omitempty"`
	// Outputs lists secondary output types emitted on every run, in
	// addition to the requested goal — the Fig. 5 multi-output idiom
	// (grouped sibling nodes require their types listed here).
	Outputs []string `json:"outputs,omitempty"`
	// SleepMs delays every run of the tool (context-aware), for
	// cancel-mid-run and occupancy scenarios. Wall-clock time is masked
	// in traces, so sleeps do not perturb goldens.
	SleepMs int `json:"sleepMs,omitempty"`
}

// ImportSpec records one primitive instance before the flow runs.
type ImportSpec struct {
	// Key is the handle flow "bind" ops use.
	Key string `json:"key"`
	// Type is the instance's schema entity type.
	Type string `json:"type"`
	// Name is the browser annotation (optional).
	Name string `json:"name,omitempty"`
	// Data is the instance's artifact text ("" for artifact-less
	// installed tools).
	Data string `json:"data,omitempty"`
}

// Op is one flow-construction operation. Which fields apply depends on
// Op:
//
//	{"op": "add",        "node": "perf", "type": "Performance"}
//	{"op": "expand",     "node": "perf", "optional": true}
//	{"op": "specialize", "node": "perf.Netlist", "type": "EditedNetlist"}
//	{"op": "connect",    "parent": "ver", "key": "Netlist/reference", "child": "net"}
//	{"op": "expand-up",  "node": "net", "consumer": "Verification", "key": "Netlist/subject", "as": "ver"}
//	{"op": "bind",       "node": "perf.fd", "to": ["sim"]}
//	{"op": "alias",      "node": "perf.Circuit.Netlist", "as": "net"}
//	{"op": "edit",       "import": "net", "type": "EditedNetlist", "to": ["netEd"], "data": "# rev2"}
//
// Node naming: "add" and "expand-up" introduce names explicitly;
// "expand" names each created child "<parent>.<depKey>" (the functional
// dependency is "<parent>.fd"); "alias" adds a shorthand.
//
// "edit" is special: it does not construct the flow. After the run
// completes, the harness records a new version of the named import —
// an instance of the edit type (the paper's EditedNetlist idiom: a
// subtype of the import's base type with a data dependency back onto
// it), produced by the editor tool named in To, with Data as its new
// artifact — superseding the import for staleness and retrace checks
// (expect.stale).
type Op struct {
	Op string `json:"op"`
	// Node is the operation's subject (all ops except connect).
	Node string `json:"node,omitempty"`
	// Type is the entity type (add: the node's type; specialize: the
	// concrete subtype).
	Type string `json:"type,omitempty"`
	// Optional includes optional dependencies (expand).
	Optional bool `json:"optional,omitempty"`
	// Parent, Key, Child describe a connect edge; Key doubles as the
	// dependency key of expand-up.
	Parent string `json:"parent,omitempty"`
	Key    string `json:"key,omitempty"`
	Child  string `json:"child,omitempty"`
	// Consumer is the parent type created by expand-up.
	Consumer string `json:"consumer,omitempty"`
	// As names the node created by expand-up, or the alias target.
	As string `json:"as,omitempty"`
	// To lists import keys bound to the node (bind). Binding several
	// fans the dependent task out once per instance (§4.1). For edit,
	// To names exactly one import: the editor tool instance.
	To []string `json:"to,omitempty"`
	// Import names the import an edit op supersedes.
	Import string `json:"import,omitempty"`
	// Data is the edited artifact text (edit).
	Data string `json:"data,omitempty"`
}

// RunSpec sets execution options and the differential sweep. The
// harness runs the scenario once per (scheduler, workers) pair and
// requires every masked trace (and final history) to be byte-identical.
type RunSpec struct {
	// Workers is the worker-count sweep (default [1, 2, 8]).
	Workers []int `json:"workers,omitempty"`
	// Schedulers is the discipline sweep: "dataflow", "barrier"
	// (default both).
	Schedulers []string `json:"schedulers,omitempty"`
	// Policy is "failfast" (default) or "continue". Scenarios that
	// expect terminal unit failures must use "continue": under failfast
	// the committed prefix depends on scheduling, so the trace cannot be
	// golden.
	Policy string `json:"policy,omitempty"`
	// Retry enables per-unit retry with deterministic jitter.
	Retry *RetrySpec `json:"retry,omitempty"`
	// TimeoutMs bounds each tool-run attempt (0 = unbounded).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxCombos caps multi-instance fan-out (0 = engine default).
	MaxCombos int `json:"maxCombos,omitempty"`
	// Target runs the sub-flow rooted at the named node instead of the
	// whole flow ("" = every root).
	Target string `json:"target,omitempty"`
}

// RetrySpec mirrors exec.RetryPolicy.
type RetrySpec struct {
	// Attempts is the total attempts per unit, first included.
	Attempts int `json:"attempts"`
	// BaseMicros is the backoff ceiling before the first retry, in
	// microseconds (kept tiny in scenarios: the delay is real time).
	BaseMicros int `json:"baseMicros,omitempty"`
	// Seed drives the deterministic jitter.
	Seed int64 `json:"seed,omitempty"`
}

// FaultPlan configures the seeded deterministic injector
// (internal/faults) over the scenario's registry.
type FaultPlan struct {
	// Seed is the injector seed; the same seed afflicts the same
	// tool-run sites on every run, under any scheduler or worker count.
	Seed int64 `json:"seed"`
	// Base applies to every tool run not covered by an override.
	Base *FaultConfig `json:"base,omitempty"`
	// ByTool overrides per concrete tool type; ByGoal per goal type
	// (ByGoal beats ByTool). Types must exist in the scenario's schema.
	ByTool map[string]FaultConfig `json:"byTool,omitempty"`
	ByGoal map[string]FaultConfig `json:"byGoal,omitempty"`
}

// FaultConfig mirrors faults.Config with JSON-friendly units.
type FaultConfig struct {
	TransientRate float64 `json:"transientRate,omitempty"`
	TransientRuns int     `json:"transientRuns,omitempty"`
	PermanentRate float64 `json:"permanentRate,omitempty"`
	LatencyRate   float64 `json:"latencyRate,omitempty"`
	LatencyMicros int     `json:"latencyMicros,omitempty"`
	HangRate      float64 `json:"hangRate,omitempty"`
	HangLimitMs   int     `json:"hangLimitMs,omitempty"`
}

// CancelSpec cancels the run after N committed units.
type CancelSpec struct {
	// AfterCommits is the number of UnitCommitted events after which the
	// run context is cancelled (must be ≥ 1 and below the unit count, or
	// the cancellation never fires).
	AfterCommits int `json:"afterCommits"`
}

// Expect is the required outcome of every sweep configuration.
type Expect struct {
	// Golden controls the golden-trace comparison (default true): the
	// masked JSONL trace must byte-equal golden/<name>.jsonl. Scenarios
	// with inherently nondeterministic traces (cancel-mid-run, failfast
	// with terminal failures) set it to false; cross-configuration
	// byte-equality is then also skipped.
	Golden *bool `json:"golden,omitempty"`
	// Error, when non-empty, is a substring the run error must contain;
	// empty means the run must succeed.
	Error string `json:"error,omitempty"`
	// TasksRun pins Result.TasksRun (committed tool executions).
	TasksRun *int `json:"tasksRun,omitempty"`
	// Instances pins the final per-type instance counts in the history
	// database (imports included).
	Instances map[string]int `json:"instances,omitempty"`
	// Skipped names the nodes expected in Result.Skipped, in plan order
	// (ContinueOnError degradation).
	Skipped []string `json:"skipped,omitempty"`
	// FailedUnits / Retries / Timeouts pin the Stats counters.
	FailedUnits *int `json:"failedUnits,omitempty"`
	Retries     *int `json:"retries,omitempty"`
	Timeouts    *int `json:"timeouts,omitempty"`
	// Artifacts asserts on produced artifact contents by node name.
	Artifacts []ArtifactExpect `json:"artifacts,omitempty"`
	// WarmRerun, when set, runs the scenario twice against a shared
	// result cache and datastore: the warm rerun must hit the cache
	// Hits times, record a byte-identical history, and its masked trace
	// minus the UnitCacheHit events must equal the cold trace.
	WarmRerun *WarmExpect `json:"warmRerun,omitempty"`
	// KillResume, when true, runs the scenario durably against a WAL
	// and sweeps kill-and-resume over every record boundary: each
	// resumed run must complete with the full golden stream in the WAL
	// and a history byte-identical to an uninterrupted run's.
	KillResume bool `json:"killResume,omitempty"`
	// Stale, when set, asserts the staleness/retrace contract after the
	// scenario's edit ops are applied: the exact stale cone via
	// history.StaleInputs, then a retrace that rebuilds it.
	Stale *StaleExpect `json:"stale,omitempty"`
	// Differential overrides the cross-configuration byte-equality
	// check (masked traces + history dumps identical across every
	// sweep cell). Default: on whenever a golden is pinned, and on for
	// generated scenarios even without a golden.
	Differential *bool `json:"differential,omitempty"`
}

// StaleExpect is the staleness/retrace contract checked after the edit
// ops run.
type StaleExpect struct {
	// Node is the flow node whose (single) instance anchors the
	// staleness query and the retrace.
	Node string `json:"node"`
	// Stale lists the import keys whose original instances must form
	// the exact stale set of Node's instance (history.StaleInputs),
	// each superseded by its edit op's new version.
	Stale []string `json:"stale"`
	// RetraceTasks, when set, pins how many constructions the retrace
	// rebuilds.
	RetraceTasks *int `json:"retraceTasks,omitempty"`
}

// ArtifactExpect asserts on the artifact produced for a node.
type ArtifactExpect struct {
	// Node names the flow node whose (single) instance is inspected.
	Node string `json:"node"`
	// Contains lists substrings the artifact must include.
	Contains []string `json:"contains,omitempty"`
}

// WarmExpect is the warm-rerun memo contract.
type WarmExpect struct {
	// Hits is the exact number of cache hits of the warm rerun —
	// normally the scenario's full unit count.
	Hits int `json:"hits"`
}

// WantGolden reports whether the scenario pins a golden trace
// (default true; disabled explicitly or, necessarily, by Cancel, and
// off by default for generated scenarios — their traces are
// deterministic but golden files for arbitrary seeds would bloat the
// corpus).
func (s *Scenario) WantGolden() bool {
	if s.Expect.Golden != nil {
		return *s.Expect.Golden
	}
	return s.Cancel == nil && s.Generate == nil
}

// Differential reports whether the harness must enforce byte-identical
// masked traces and history dumps across every sweep cell. It defaults
// to on whenever a golden is pinned (the golden already implies it)
// and on for generated scenarios (the golden-free differential mode);
// Expect.Differential overrides.
func (s *Scenario) Differential() bool {
	if s.Expect.Differential != nil {
		return *s.Expect.Differential
	}
	return s.WantGolden() || (s.Generate != nil && s.Cancel == nil)
}

// SchemaText joins the schema DSL lines into the text schema.Parse
// consumes.
func (s *Scenario) SchemaText() string { return strings.Join(s.Schema, "\n") }

// Decode reads a scenario from JSON, rejecting unknown fields — a
// typo'd field name is a silent no-op otherwise, and silent no-ops in
// a conformance corpus are how contracts rot. The decoded scenario is
// validated.
func Decode(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// Trailing garbage after the document is a malformed file, not a
	// second scenario.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Load reads and decodes a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return sc, nil
}

// LoadDir loads every *.json scenario in a directory, sorted by name.
func LoadDir(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json scenarios in %s", dir)
	}
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// knownOps is the op vocabulary; Validate rejects anything else.
var knownOps = map[string]bool{
	"add": true, "expand": true, "specialize": true, "connect": true,
	"expand-up": true, "bind": true, "alias": true, "edit": true,
}

// genShapes is the generator topology vocabulary (flowgen's shapes;
// kept local so this package stays pure data with no flowgen import).
var genShapes = map[string]bool{
	"": true, "layered": true, "diamond": true, "fanout": true, "chain": true,
}

// Validate checks everything checkable without a schema or an engine:
// structural completeness, reference hygiene among the scenario's own
// parts, and bounds. Schema-level errors (unknown entity types, type
// mismatches) surface when the harness materializes the world, with
// the schema's own diagnostics.
func (s *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		name := s.Name
		if name == "" {
			name = "<unnamed>"
		}
		return fmt.Errorf("scenario %s: %s", name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fail("missing name")
	}
	if strings.ContainsAny(s.Name, "/\\ \t\n") {
		return fail("name %q is not a filename-safe slug", s.Name)
	}
	switch s.Base {
	case "", "standard":
	default:
		return fail("unknown base %q (want \"\" or \"standard\")", s.Base)
	}
	if g := s.Generate; g != nil {
		if s.Base != "" || len(s.Schema) > 0 || len(s.Tools) > 0 || len(s.Imports) > 0 || len(s.Flow) > 0 {
			return fail("generate owns the world; remove base/schema/tools/imports/flow")
		}
		if g.Cells < 1 {
			return fail("generate.cells must be ≥ 1")
		}
		if !genShapes[g.Shape] {
			return fail("generate.shape: unknown shape %q (want layered, diamond, fanout or chain)", g.Shape)
		}
		if g.FanIn < 0 || g.FanIn > 4 {
			return fail("generate.fanIn %d outside 0..4", g.FanIn)
		}
		if g.Payload < 0 || g.Levels < 0 {
			return fail("generate: negative payload/levels")
		}
		if s.Faults != nil || s.Cancel != nil {
			return fail("generate does not compose with faults/cancel")
		}
		if s.Expect.Stale != nil || len(s.Expect.Artifacts) > 0 || len(s.Expect.Skipped) > 0 {
			return fail("generated worlds have no named nodes; remove expect.stale/artifacts/skipped")
		}
	}
	if s.Generate == nil {
		if s.Base == "standard" {
			if len(s.Schema) > 0 {
				return fail("base \"standard\" supplies the schema; remove the schema field")
			}
			if len(s.Tools) > 0 {
				return fail("base \"standard\" supplies the encapsulations; remove the tools field")
			}
		} else if len(s.Schema) == 0 {
			return fail("missing schema (or set base to \"standard\")")
		}
	}
	for i, t := range s.Tools {
		if t.Type == "" {
			return fail("tools[%d]: missing type", i)
		}
		switch t.Behavior {
		case "", "transform", "fail":
		default:
			return fail("tools[%d] (%s): unknown behavior %q (want transform or fail)", i, t.Type, t.Behavior)
		}
		if t.SleepMs < 0 {
			return fail("tools[%d] (%s): negative sleepMs", i, t.Type)
		}
	}
	importKeys := make(map[string]bool, len(s.Imports))
	for i, im := range s.Imports {
		if im.Key == "" {
			return fail("imports[%d]: missing key", i)
		}
		if im.Type == "" {
			return fail("imports[%d] (%s): missing type", i, im.Key)
		}
		if importKeys[im.Key] {
			return fail("imports[%d]: duplicate key %q", i, im.Key)
		}
		importKeys[im.Key] = true
	}
	if len(s.Flow) == 0 && s.Generate == nil {
		return fail("missing flow ops")
	}
	editedImports := make(map[string]bool)
	for i, op := range s.Flow {
		at := func(format string, args ...any) error {
			return fail("flow[%d] (%s): %s", i, op.Op, fmt.Sprintf(format, args...))
		}
		if !knownOps[op.Op] {
			return fail("flow[%d]: unknown op %q", i, op.Op)
		}
		switch op.Op {
		case "add":
			if op.Node == "" || op.Type == "" {
				return at("needs node and type")
			}
		case "expand":
			if op.Node == "" {
				return at("needs node")
			}
		case "specialize":
			if op.Node == "" || op.Type == "" {
				return at("needs node and type")
			}
		case "connect":
			if op.Parent == "" || op.Key == "" || op.Child == "" {
				return at("needs parent, key and child")
			}
		case "expand-up":
			if op.Node == "" || op.Consumer == "" || op.Key == "" || op.As == "" {
				return at("needs node, consumer, key and as")
			}
		case "bind":
			if op.Node == "" {
				return at("needs node")
			}
			if len(op.To) == 0 {
				return at("needs at least one import key in to")
			}
			for _, k := range op.To {
				if !importKeys[k] {
					return at("unknown import key %q (have: %s)", k, keyList(importKeys))
				}
			}
		case "alias":
			if op.Node == "" || op.As == "" {
				return at("needs node and as")
			}
		case "edit":
			if op.Import == "" || op.Type == "" || op.Data == "" {
				return at("needs import, type and data")
			}
			if !importKeys[op.Import] {
				return at("unknown import key %q (have: %s)", op.Import, keyList(importKeys))
			}
			if len(op.To) != 1 {
				return at("needs exactly one editor tool import in to")
			}
			if !importKeys[op.To[0]] {
				return at("unknown import key %q (have: %s)", op.To[0], keyList(importKeys))
			}
			editedImports[op.Import] = true
		}
	}
	for _, w := range s.Run.Workers {
		if w < 1 {
			return fail("run.workers: %d is below 1", w)
		}
	}
	for _, sch := range s.Run.Schedulers {
		if sch != "dataflow" && sch != "barrier" {
			return fail("run.schedulers: unknown scheduler %q", sch)
		}
	}
	switch s.Run.Policy {
	case "", "failfast", "continue":
	default:
		return fail("run.policy: unknown policy %q (want failfast or continue)", s.Run.Policy)
	}
	if s.Run.Retry != nil && s.Run.Retry.Attempts < 1 {
		return fail("run.retry.attempts must be ≥ 1")
	}
	if s.Run.TimeoutMs < 0 || s.Run.MaxCombos < 0 {
		return fail("run: negative timeoutMs/maxCombos")
	}
	if s.Faults != nil {
		if s.Faults.Base != nil {
			if err := s.Faults.Base.check(); err != nil {
				return fail("faults.base: %v", err)
			}
		}
		for tool, c := range s.Faults.ByTool {
			if err := c.check(); err != nil {
				return fail("faults.byTool[%s]: %v", tool, err)
			}
		}
		for goal, c := range s.Faults.ByGoal {
			if err := c.check(); err != nil {
				return fail("faults.byGoal[%s]: %v", goal, err)
			}
		}
	}
	if s.Cancel != nil {
		if s.Cancel.AfterCommits < 1 {
			return fail("cancel.afterCommits must be ≥ 1")
		}
		if s.WantGolden() {
			return fail("cancel-mid-run traces are nondeterministic; set \"expect\": {\"golden\": false}")
		}
		if s.Expect.Error == "" {
			return fail("cancel scenarios must expect an error (expect.error)")
		}
	}
	if s.Expect.WarmRerun != nil && s.Expect.WarmRerun.Hits < 1 {
		return fail("expect.warmRerun.hits must be ≥ 1")
	}
	for i, a := range s.Expect.Artifacts {
		if a.Node == "" {
			return fail("expect.artifacts[%d]: missing node", i)
		}
	}
	if s.Expect.KillResume && !s.WantGolden() {
		return fail("expect.killResume needs a deterministic trace (golden must not be disabled)")
	}
	if st := s.Expect.Stale; st != nil {
		if st.Node == "" {
			return fail("expect.stale: missing node")
		}
		if len(st.Stale) == 0 {
			return fail("expect.stale: empty stale set (list the edited import keys)")
		}
		for _, k := range st.Stale {
			if !editedImports[k] {
				return fail("expect.stale: import %q has no edit op (have: %s)", k, keyList(editedImports))
			}
		}
		if st.RetraceTasks != nil && *st.RetraceTasks < 1 {
			return fail("expect.stale.retraceTasks must be ≥ 1")
		}
	}
	return nil
}

func (c FaultConfig) check() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transientRate", c.TransientRate}, {"permanentRate", c.PermanentRate},
		{"latencyRate", c.LatencyRate}, {"hangRate", c.HangRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("%s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.TransientRuns < 0 || c.LatencyMicros < 0 || c.HangLimitMs < 0 {
		return fmt.Errorf("negative duration/count field")
	}
	return nil
}

func keyList(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic error text regardless of map order
	if len(keys) == 0 {
		return "none"
	}
	return strings.Join(keys, ", ")
}
